"""Counting resource limiter with wake-up callbacks.

Models MSHR files (per-core data-cache MSHRs and the shared L2 MSHRs of
Table 1) and any other finite slot pool.  Acquirers that find the pool full
register a waiter; every release wakes all waiters, which re-try — a
thundering herd of at most a handful of cores, so simplicity wins.
"""

from __future__ import annotations

from typing import Callable, List


class Limiter:
    """A pool of ``capacity`` identical slots."""

    def __init__(self, capacity: int, name: str = "limiter") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.peak = 0
        self._waiters: List[Callable[[], None]] = []

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def try_acquire(self) -> bool:
        """Take a slot if one is free; returns success."""
        if self.in_use >= self.capacity:
            return False
        self.in_use += 1
        if self.in_use > self.peak:
            self.peak = self.in_use
        return True

    def release(self) -> None:
        """Return a slot and wake every registered waiter once."""
        if self.in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.in_use -= 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter()

    def add_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot wake-up fired on the next release."""
        self._waiters.append(callback)
