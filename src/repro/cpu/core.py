"""Bounded-window core model.

Each core replays a program's L2-miss trace at the program's base IPC
(its throughput when every access hits on-chip) and interacts with the
memory system exactly where a real out-of-order core would:

* a **demand read** occupies a data-cache MSHR and a shared-L2 MSHR and
  blocks *retirement*; the core keeps running ahead until the ROB window
  behind the oldest outstanding miss fills (memory-level parallelism);
* a **software prefetch** uses the same MSHR resources but never stalls —
  it is dropped when no MSHR is free, like a real non-binding prefetch;
* a **write** occupies a store-buffer slot and stalls only when the store
  buffer is full.

The model is event-driven: the core sleeps between trace points and is
woken by completions, so simulated time costs nothing when the core is
compute-bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.config import CpuConfig
from repro.controller.controller import MemoryController
from repro.controller.transaction import MemoryRequest, RequestKind
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter
from repro.engine.simulator import Simulator
from repro.workloads.trace import TraceEvent, TraceKind


@dataclass
class CoreStats:
    """Per-core event counters."""

    demand_misses: int = 0
    l2_prefetch_hits: int = 0  # demand found the line already filled
    l2_merges: int = 0  # demand merged with an in-flight prefetch
    sw_prefetches_issued: int = 0
    sw_prefetches_squashed: int = 0  # line already present or in flight
    sw_prefetches_dropped: int = 0  # no MSHR free
    hw_prefetches_issued: int = 0  # stream prefetcher (optional)
    writes_issued: int = 0
    rob_stalls: int = 0
    mshr_stalls: int = 0
    store_stalls: int = 0


class Core:
    """One simulated processor core running one program trace."""

    __slots__ = (
        "sim", "core_id", "config", "base_ipc", "trace", "controller",
        "l2", "l2_mshr", "data_mshr", "target", "on_finished",
        "warmup_target", "on_warmup", "_warmup_fired", "ps_per_inst",
        "progress_inst", "progress_time", "pending", "_pending_inst",
        "_pending_action", "outstanding_reads", "stores_outstanding",
        "blocked", "finished", "stats", "_recent_misses", "_recent_miss_cap",
    )

    _merge_tokens = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        config: CpuConfig,
        base_ipc: float,
        trace: Iterator[TraceEvent],
        controller: MemoryController,
        l2: L2FillTable,
        l2_mshr: Limiter,
        target_instructions: int,
        on_finished: Callable[["Core"], None],
        warmup_instructions: int = 0,
        on_warmup: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        if base_ipc <= 0:
            raise ValueError("base_ipc must be positive")
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.base_ipc = base_ipc
        self.trace = trace
        self.controller = controller
        self.l2 = l2
        self.l2_mshr = l2_mshr
        self.data_mshr = Limiter(config.data_mshr_entries, f"core{core_id}.mshr")
        self.target = target_instructions
        self.on_finished = on_finished
        self.warmup_target = warmup_instructions
        self.on_warmup = on_warmup
        self._warmup_fired = warmup_instructions <= 0

        self.ps_per_inst = config.cycle_ps / base_ipc
        self.progress_inst = 0
        self.progress_time = 0
        self.pending: Optional[TraceEvent] = None
        self._pending_inst = 0
        self._pending_action = self._try_process
        self.outstanding_reads: Dict[int, int] = {}  # token -> inst index
        self.stores_outstanding = 0
        self.blocked: Optional[str] = None
        self.finished = False
        self.stats = CoreStats()
        #: Recent demand-miss lines, for hardware stream detection.
        self._recent_misses: Dict[int, bool] = {}
        self._recent_miss_cap = 64

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin execution at time zero."""
        self._fetch_next()

    @property
    def committed_instructions(self) -> int:
        """Instructions retired so far (the IPC numerator)."""
        return self.progress_inst

    def ipc(self, elapsed_ps: int) -> float:
        """IPC over an elapsed wall-time window."""
        if elapsed_ps <= 0:
            return 0.0
        cycles = elapsed_ps / self.config.cycle_ps
        return self.progress_inst / cycles

    # ------------------------------------------------------------------

    def _time_to_reach(self, inst: int) -> int:
        delta = inst - self.progress_inst
        return self.progress_time + round(delta * self.ps_per_inst)

    def _window_limit(self) -> Optional[int]:
        """Farthest instruction the front end may reach: the oldest
        outstanding demand miss plus the ROB size (None = unbounded)."""
        if not self.outstanding_reads:
            return None
        return min(self.outstanding_reads.values()) + self.config.rob_entries

    def _fetch_next(self) -> None:
        try:
            event = next(self.trace)
        except StopIteration:
            # Finite (recorded) trace exhausted: run the remaining
            # instructions at the base rate and finish.
            self.pending = None
            self._pending_inst = self.target
            self._pending_action = self._finish
            self._schedule_pending()
            return
        if event.inst >= self.target:
            self.pending = None
            self._pending_inst = self.target
            self._pending_action = self._finish
        else:
            self.pending = event
            self._pending_inst = event.inst
            self._pending_action = self._try_process
        self._schedule_pending()

    def _schedule_pending(self) -> None:
        """Schedule the next step, or park behind the ROB window."""
        limit = self._window_limit()
        if limit is not None and self._pending_inst > limit:
            if self.blocked != "rob":
                self.stats.rob_stalls += 1
            self.blocked = "rob"
            return  # a read completion re-invokes us
        self.blocked = None
        now = self.sim.now
        due = self.progress_time + round(
            (self._pending_inst - self.progress_inst) * self.ps_per_inst
        )
        self.sim.schedule_fire(due if due > now else now, self._pending_action)

    def _finish(self) -> None:
        if self.finished:
            return
        if self.outstanding_reads:
            # In-order commit: the target instruction cannot retire while
            # an earlier demand miss is outstanding.
            self.blocked = "rob"
            return
        self.finished = True
        self.progress_inst = self.target
        self.progress_time = self.sim.now
        self._check_warmup()
        self.on_finished(self)

    def _resume(self) -> None:
        """Wake-up from a limiter or completion; retry the pending step."""
        if self.finished or self.blocked is None:
            return
        if self.blocked == "rob":
            self._schedule_pending()
            return
        self.blocked = None
        self._pending_action()

    def _try_process(self) -> None:
        if self.finished or self.pending is None:
            return
        event = self.pending
        dispatched = self._dispatch(event)
        if not dispatched:
            return  # blocked; a waiter will resume us
        self.blocked = None
        self.pending = None
        self.progress_inst = event.inst
        self.progress_time = self.sim.now  # >= the no-stall ideal by construction
        self._check_warmup()
        self._fetch_next()

    def _check_warmup(self) -> None:
        if not self._warmup_fired and self.progress_inst >= self.warmup_target:
            self._warmup_fired = True
            if self.on_warmup is not None:
                self.on_warmup(self)

    # ------------------------------------------------------------------

    def _dispatch(self, event: TraceEvent) -> bool:
        if event.kind is TraceKind.READ:
            return self._dispatch_read(event)
        if event.kind is TraceKind.PREFETCH:
            return self._dispatch_prefetch(event)
        return self._dispatch_write(event)

    def _acquire_mshrs(self) -> bool:
        """Take one data-cache MSHR and one shared-L2 MSHR, or neither."""
        if not self.data_mshr.try_acquire():
            self.data_mshr.add_waiter(self._resume)
            return False
        if not self.l2_mshr.try_acquire():
            self.data_mshr.release()
            self.l2_mshr.add_waiter(self._resume)
            return False
        return True

    def _release_mshrs(self) -> None:
        self.l2_mshr.release()
        self.data_mshr.release()

    def _dispatch_read(self, event: TraceEvent) -> bool:
        status, entry = self.l2.probe(event.line_addr, self.sim.now)
        if status == "hit":
            self.stats.l2_prefetch_hits += 1
            return True
        if status == "inflight":
            assert entry is not None
            self.stats.l2_merges += 1
            token = -next(self._merge_tokens)
            self.outstanding_reads[token] = event.inst
            entry.waiters.append(lambda t=token: self._read_settled(t))
            return True
        if not self._acquire_mshrs():
            self.stats.mshr_stalls += 1
            self.blocked = "mshr"
            return False
        self.stats.demand_misses += 1
        request = MemoryRequest(
            kind=RequestKind.DEMAND_READ,
            line_addr=event.line_addr,
            core_id=self.core_id,
            arrival=self.sim.now,
            on_complete=lambda req, i=event.inst: self._demand_done(req, i),
        )
        self.outstanding_reads[request.req_id] = event.inst
        self.controller.submit(request)
        self._maybe_hw_prefetch(event.line_addr)
        return True

    def _maybe_hw_prefetch(self, line_addr: int) -> None:
        """L2 stream prefetcher: on a miss continuing a detected stream,
        fetch ``hw_prefetch_degree`` lines ahead (non-binding, dropped when
        MSHRs are scarce — like a real tagged next-line prefetcher)."""
        degree = self.config.hw_prefetch_degree
        self._note_recent_miss(line_addr)
        if degree == 0:
            return
        if (
            line_addr - 1 not in self._recent_misses
            and line_addr - 2 not in self._recent_misses
        ):
            return  # no ascending stream ending here
        for ahead in range(1, degree + 1):
            target = line_addr + ahead
            if self.l2.has_line(target):
                continue
            if not self.data_mshr.try_acquire():
                return
            if not self.l2_mshr.try_acquire():
                self.data_mshr.release()
                return
            self.stats.hw_prefetches_issued += 1
            self.l2.start_fill(target)
            request = MemoryRequest(
                kind=RequestKind.SW_PREFETCH,  # memory cannot tell hw/sw apart
                line_addr=target,
                core_id=self.core_id,
                arrival=self.sim.now,
                on_complete=self._prefetch_done,
            )
            self.controller.submit(request)

    def _note_recent_miss(self, line_addr: int) -> None:
        self._recent_misses[line_addr] = True
        if len(self._recent_misses) > self._recent_miss_cap:
            oldest = next(iter(self._recent_misses))
            del self._recent_misses[oldest]

    def _demand_done(self, request: MemoryRequest, inst: int) -> None:
        self._release_mshrs()
        self._read_settled(request.req_id)

    def _read_settled(self, token: int) -> None:
        self.outstanding_reads.pop(token, None)
        if self.blocked == "rob":
            self._resume()

    def _dispatch_prefetch(self, event: TraceEvent) -> bool:
        if self.l2.has_line(event.line_addr):
            self.stats.sw_prefetches_squashed += 1
            return True
        if not self.data_mshr.try_acquire():
            self.stats.sw_prefetches_dropped += 1
            return True  # non-binding prefetch: dropped, never stalls
        if not self.l2_mshr.try_acquire():
            self.data_mshr.release()
            self.stats.sw_prefetches_dropped += 1
            return True
        self.stats.sw_prefetches_issued += 1
        self.l2.start_fill(event.line_addr)
        request = MemoryRequest(
            kind=RequestKind.SW_PREFETCH,
            line_addr=event.line_addr,
            core_id=self.core_id,
            arrival=self.sim.now,
            on_complete=self._prefetch_done,
        )
        self.controller.submit(request)
        return True

    def _prefetch_done(self, request: MemoryRequest) -> None:
        self._release_mshrs()
        self.l2.complete_fill(request.line_addr, self.sim.now)

    def _dispatch_write(self, event: TraceEvent) -> bool:
        if self.stores_outstanding >= self.config.store_buffer_entries:
            self.stats.store_stalls += 1
            self.blocked = "store"
            return False
        self.stores_outstanding += 1
        self.stats.writes_issued += 1
        self.l2.invalidate(event.line_addr)
        request = MemoryRequest(
            kind=RequestKind.WRITE,
            line_addr=event.line_addr,
            core_id=self.core_id,
            arrival=self.sim.now,
            on_complete=self._store_done,
        )
        self.controller.submit(request)
        return True

    def _store_done(self, request: MemoryRequest) -> None:
        self.stores_outstanding -= 1
        if self.blocked == "store":
            self._resume()
