"""Reproduction of "DRAM-Level Prefetching for Fully-Buffered DIMM:
Design, Performance and Power Saving" (Lin et al., ISPASS 2007).

A trace-driven, event-accurate simulator of FB-DIMM and DDR2 memory
subsystems with the paper's region-based AMB prefetching.  Quickstart::

    from repro import fbdimm_amb_prefetch, fbdimm_baseline, run_system

    base = run_system(fbdimm_baseline(num_cores=2), ["wupwise", "swim"])
    ap = run_system(fbdimm_amb_prefetch(num_cores=2), ["wupwise", "swim"])
    print(sum(ap.core_ipcs) / sum(base.core_ipcs))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    AmbPrefetchConfig,
    Associativity,
    CpuConfig,
    DramTimings,
    InterleaveScheme,
    MemoryConfig,
    MemoryKind,
    PagePolicy,
    ReplacementPolicy,
    SystemConfig,
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
)
from repro.system import SimulationResult, System, run_system
from repro.workloads.multiprog import SINGLE_CORE, WORKLOADS, workload_programs
from repro.workloads.spec import PROGRAMS

__version__ = "1.0.0"

__all__ = [
    "AmbPrefetchConfig",
    "Associativity",
    "CpuConfig",
    "DramTimings",
    "InterleaveScheme",
    "MemoryConfig",
    "MemoryKind",
    "PagePolicy",
    "ReplacementPolicy",
    "SystemConfig",
    "ddr2_baseline",
    "fbdimm_amb_prefetch",
    "fbdimm_baseline",
    "SimulationResult",
    "System",
    "run_system",
    "SINGLE_CORE",
    "WORKLOADS",
    "workload_programs",
    "PROGRAMS",
    "__version__",
]
