"""Configuration dataclasses for the whole simulated system.

The defaults reproduce Tables 1 and 2 of the paper: a 4 GHz multi-core
processor in front of a memory subsystem of four physical channels (two
physical channels ganged per logic channel), four DIMMs per physical channel,
four logic banks per DIMM, at 667 MT/s, with the DDR2 timing parameters of
Table 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.engine.simulator import ns


class MemoryKind(enum.Enum):
    """Which first-level interconnect the memory subsystem uses."""

    DDR2 = "ddr2"
    FBDIMM = "fbdimm"


class PagePolicy(enum.Enum):
    """DRAM row-buffer management policy.

    The paper uses close page (with auto-precharge) for cacheline and
    multi-cacheline interleaving, and open page for page interleaving.
    """

    CLOSE_PAGE = "close"
    OPEN_PAGE = "open"


class InterleaveScheme(enum.Enum):
    """How physical addresses are laid out across channels/DIMMs/banks."""

    CACHELINE = "cacheline"
    MULTI_CACHELINE = "multi_cacheline"
    PAGE = "page"


class Associativity(enum.Enum):
    """Associativity of the AMB-cache tag store at the memory controller."""

    DIRECT = 1
    TWO_WAY = 2
    FOUR_WAY = 4
    FULL = 0  # sentinel: ways == number of entries

    def ways(self, num_entries: int) -> int:
        """Resolve to a concrete way count for ``num_entries`` blocks."""
        if self is Associativity.FULL:
            return num_entries
        return min(self.value, num_entries)


class ReplacementPolicy(enum.Enum):
    """AMB-cache replacement.  The paper argues for FIFO (a hit block is
    likely cached at the processor and will not be re-accessed soon)."""

    FIFO = "fifo"
    LRU = "lru"


class PrefetchLocation(enum.Enum):
    """Where prefetched lines are buffered.

    AMB: the paper's proposal — prefetched lines stay behind the channel
    in the AMB cache and never consume channel bandwidth unless hit.
    CONTROLLER: the class of schemes the paper contrasts against (Lin,
    Reinhardt and Burger [13]) — the whole region crosses the channel to a
    buffer at the memory controller.  Hits are cheaper (no channel round
    trip) but every miss multiplies northbound traffic by K.
    """

    AMB = "amb"
    CONTROLLER = "controller"


#: DRAM clock period in picoseconds for each supported data rate (MT/s).
#: DDR transfers two beats per clock, so clock = rate / 2.  The 1066+ rates
#: exist for the DDR3 devices the paper's footnote 1 anticipates; the
#: 1600–2400 rates are the DDR3/DDR4 bins of the Ramulator 2 timing table
#: used by the :mod:`repro.dram.devices` presets.
DRAM_CLOCK_PS = {
    533: 3750,
    667: 3000,
    800: 2500,
    1066: 1875,
    1333: 1500,
    1600: 1250,
    1866: 1071,
    2133: 937,
    2400: 833,
}


@dataclass(frozen=True)
class DramTimings:
    """DDR2 device timing parameters (Table 2 of the paper), in nanoseconds."""

    tRP: float = 15.0  # PRE to ACT, same bank
    tRCD: float = 15.0  # ACT to RD/WR, same bank
    tCL: float = 15.0  # RD command to read data
    tRC: float = 54.0  # ACT to ACT, same bank
    tRRD: float = 9.0  # ACT to ACT (or PRE to PRE), different banks
    tRPD: float = 9.0  # RD command to PRE
    tWTR: float = 9.0  # end of WR data to RD command
    tRAS: float = 39.0  # ACT to PRE (reads)
    tWL: float = 12.0  # WR command to WR data
    tWPD: float = 36.0  # WR command to PRE

    def ps(self, name: str) -> int:
        """Return a timing parameter converted to picoseconds."""
        return ns(getattr(self, name))


#: DDR3-class timing preset for the "future FB-DIMM" of footnote 1.
#: Core latencies in ns are nearly generation-invariant (tCL ~13-15 ns);
#: what improves is the data rate.  Values are typical DDR3-1066 (CL7).
DDR3_TIMINGS = DramTimings(
    tRP=13.125,
    tRCD=13.125,
    tCL=13.125,
    tRC=50.625,
    tRRD=7.5,
    tRPD=7.5,
    tWTR=7.5,
    tRAS=37.5,
    tWL=11.25,
    tWPD=33.75,
)


def ddr3_memory_overrides(data_rate_mts: int = 1066) -> dict:
    """Memory-config overrides for a DDR3-generation FB-DIMM channel.

    Usage: ``fbdimm_baseline(**ddr3_memory_overrides())``.
    """
    if data_rate_mts not in (800, 1066, 1333):
        raise ValueError(f"not a DDR3-class data rate: {data_rate_mts}")
    return {"data_rate_mts": data_rate_mts, "timings": DDR3_TIMINGS}


@dataclass(frozen=True)
class AmbPrefetchConfig:
    """Configuration of the region-based AMB prefetching (Section 3.2).

    Attributes:
        enabled: Master switch; off reproduces the plain FB-DIMM baseline.
        region_cachelines: K, the number of cachelines fetched per demand
            miss; also the multi-cacheline interleaving granularity.
        cache_entries: Blocks per AMB cache (64 x 64 B = 4 KB default).
        associativity: Tag-store associativity at the memory controller.
        replacement: AMB-cache replacement policy (paper default FIFO).
        full_latency_hits: The FBD-APFL variant of Figure 9 - an AMB-cache
            hit pays the full DRAM-access idle latency but performs no bank
            activity, isolating the bandwidth-utilisation gain.
        location: Buffer placement - the paper's AMB cache, or a
            controller-side buffer for comparison (see PrefetchLocation).
        policy: Registered :mod:`repro.prefetch.policy` name deciding which
            lines accompany a demand miss ("region" is the paper's
            Section 3.2 prefetcher and reproduces the hard-wired behaviour
            bit-identically).
        lifecycle: Per-prefetch lifecycle accounting
            (:mod:`repro.prefetch.lifecycle`).  Observation only - the
            issue/fill/outcome taxonomy counters are filled but no timing
            decision changes, so results stay bit-identical either way.
    """

    enabled: bool = True
    region_cachelines: int = 4
    cache_entries: int = 64
    associativity: Associativity = Associativity.FULL
    replacement: ReplacementPolicy = ReplacementPolicy.FIFO
    full_latency_hits: bool = False
    location: PrefetchLocation = PrefetchLocation.AMB

    #: Late-added knobs elided from the canonical encoding while at their
    #: defaults, so every pre-existing result digest and run-cache key is
    #: unchanged (the config is embedded in serialized results).
    ENCODE_OPTIONAL_FIELDS = frozenset({"policy", "lifecycle"})

    policy: str = "region"
    lifecycle: bool = False

    def __post_init__(self) -> None:
        if self.region_cachelines < 1:
            raise ValueError("region_cachelines must be >= 1")
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        if self.cache_entries % max(self.associativity.ways(self.cache_entries), 1):
            raise ValueError(
                f"cache_entries={self.cache_entries} not divisible by "
                f"ways={self.associativity.ways(self.cache_entries)}"
            )
        # Late import: the policy registry imports this module for typing.
        from repro.prefetch.policy import policy_names

        if self.policy not in policy_names():
            known = ", ".join(policy_names())
            raise ValueError(
                f"unknown prefetch policy {self.policy!r}; known: {known}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Seeded, deterministic fault injection for the FB-DIMM link layer.

    Real FB-DIMM frames carry CRC and the controller replays corrupted
    transfers; the seed model assumes a perfect channel.  With ``enabled``
    this layer corrupts southbound/northbound transfers at ``error_rate``
    (per transfer attempt), flips AMB-cache lines at ``amb_bitflip_rate``
    (per cache hit, detected by parity and re-fetched), and drives the
    controller-side retry engine: bounded replays with exponential backoff
    in frame slots, and a per-channel degraded mode that disables AMB
    prefetching after persistent errors.

    Determinism: every fault decision comes from one ``random.Random``
    stream per channel, seeded from ``(seed, channel_id)`` only — the same
    config replays the same fault pattern, and ``error_rate=0`` (or
    ``enabled=False``) is bit-identical to a fault-free run.

    Attributes:
        enabled: Master switch; off costs nothing and changes nothing.
        error_rate: Per-transfer CRC-corruption probability on the links.
        amb_bitflip_rate: Per-hit probability that a resident AMB-cache
            line has suffered a bit flip (parity detects; the hit becomes
            a miss and the line is invalidated).
        seed: Fault-stream seed, independent of the workload seed.
        max_retries: Replay attempts per transfer before it is counted as
            dropped and the recovery replay completes it.
        backoff_frames: Initial replay backoff in frame slots; doubles on
            every further attempt of the same transfer.
        degraded_threshold: Consecutive corrupted transfers on one channel
            before it enters degraded mode (prefetching off); 0 disables
            degraded mode.
    """

    enabled: bool = False
    error_rate: float = 0.0
    amb_bitflip_rate: float = 0.0
    seed: int = 0xFBD1
    max_retries: int = 3
    backoff_frames: int = 1
    degraded_threshold: int = 16

    def __post_init__(self) -> None:
        for name in ("error_rate", "amb_bitflip_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_frames < 0:
            raise ValueError("backoff_frames must be >= 0")
        if self.degraded_threshold < 0:
            raise ValueError("degraded_threshold must be >= 0")


@dataclass(frozen=True)
class TimelineConfig:
    """Sim-time-windowed telemetry (:mod:`repro.timeline`).

    When enabled, a :class:`~repro.timeline.collector.TimelineCollector`
    snapshots counter deltas every ``window_ns`` of simulated time into
    typed per-window records (bandwidth, latency percentiles, queue depth,
    row-buffer and prefetch behaviour, per-command energy, power-down
    residency).  Observation only: the collector never touches model
    state, so a timeline-enabled run produces the same performance
    results as a disabled one — only the extra counters and the
    ``timeline`` field of the result differ (pinned by the zero-overhead
    guard test).

    Attributes:
        enabled: Master switch; off costs nothing and changes nothing —
            a default-config run is bit-identical to a build without the
            timeline subsystem at all.
        window_ns: Window length in simulated nanoseconds.
        capture_latency: Record per-request demand latencies so each
            window gets exact percentiles (p50/p95/p99/max).  Costs one
            list append per demand read.
        powerdown_entry_ns: Idle-gap length beyond which the remainder of
            the gap counts as power-down residency (models the CKE-low
            entry/exit penalty; DDR2 takes a few clocks).
        max_windows: Safety bound on recorded windows; ticking stops
            (with a truncation marker) once reached.
    """

    enabled: bool = False
    window_ns: float = 1000.0
    capture_latency: bool = True
    powerdown_entry_ns: float = 10.0
    max_windows: int = 100_000

    def __post_init__(self) -> None:
        if self.window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if self.powerdown_entry_ns < 0:
            raise ValueError("powerdown_entry_ns must be >= 0")
        if self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")

    @property
    def window_ps(self) -> int:
        """Window length in the integer-picosecond time base."""
        return ns(self.window_ns)

    @property
    def powerdown_entry_ps(self) -> int:
        return ns(self.powerdown_entry_ns)


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and policy of the memory subsystem (Table 1, memory rows).

    The paper ganged two physical channels into each logic channel; the
    default of two logic channels therefore means four physical channels.
    """

    kind: MemoryKind = MemoryKind.FBDIMM
    logic_channels: int = 2
    physical_per_logic: int = 2
    dimms_per_channel: int = 4
    ranks_per_dimm: int = 1  # Table 1 uses single-rank DIMMs
    banks_per_dimm: int = 4  # logic banks per rank
    data_rate_mts: int = 667
    cacheline_bytes: int = 64
    page_bytes: int = 4096  # logic-DRAM-bank row size (chip page x chips/rank)
    rows_per_bank: int = 16384
    interleave: InterleaveScheme = InterleaveScheme.CACHELINE
    page_policy: PagePolicy = PagePolicy.CLOSE_PAGE
    timings: DramTimings = field(default_factory=DramTimings)
    prefetch: AmbPrefetchConfig = field(
        default_factory=lambda: AmbPrefetchConfig(enabled=False)
    )
    controller_overhead_ns: float = 12.0
    command_delay_ns: float = 3.0  # channel command transmission
    amb_hop_ns: float = 3.0  # per-AMB forwarding delay on the daisy chain
    variable_read_latency: bool = False  # VRL (off by default, as evaluated)
    buffer_entries: int = 64  # controller memory buffer (Table 1)
    write_drain_threshold: int = 16  # outstanding writes before writes win
    #: Dead time between DDR2 data-bus bursts of different direction or
    #: rank (read/write turnaround, rank-to-rank bubble), in DRAM clocks.
    #: FB-DIMM's unidirectional links pay no such bubble.
    ddr2_switch_gap_clocks: float = 1.5
    #: All-bank refresh period per rank (tREFI); 0 disables refresh, the
    #: default, since the paper does not model it and it affects every
    #: configuration equally.  Typical DDR2 value: 7800 ns.
    refresh_interval_ns: float = 0.0
    #: Refresh cycle time (tRFC) during which a refreshing rank's banks
    #: are unavailable.  Typical 1 Gb DDR2 value: 127.5 ns.
    refresh_cycle_ns: float = 127.5
    #: Four-activate window (tFAW): at most four ACTs per rank within any
    #: window of this length.  0 disables the constraint — the paper's
    #: 4-bank DDR2 devices predate tFAW, so it is off by default and a
    #: provable no-op for the DDR2 preset.
    tFAW_ns: float = 0.0
    #: Device-generation preset this config was resolved from (see
    #: :mod:`repro.dram.devices`); purely descriptive — the fields above
    #: are authoritative — but must name a registered preset so energy
    #: accounting can look up the generation's datasheet calculator.
    device: str = "ddr2-667"

    #: Late-added fields elided from the canonical encoding while at their
    #: defaults, so pre-existing cache keys and conformance digests are
    #: unchanged for configs that never touch them.
    ENCODE_OPTIONAL_FIELDS = frozenset({"tFAW_ns", "device"})

    def __post_init__(self) -> None:
        if self.data_rate_mts not in DRAM_CLOCK_PS:
            raise ValueError(
                f"unsupported data rate {self.data_rate_mts}; "
                f"supported: {sorted(DRAM_CLOCK_PS)}"
            )
        if self.logic_channels < 1 or self.physical_per_logic < 1:
            raise ValueError("need at least one channel")
        if self.dimms_per_channel < 1 or self.banks_per_dimm < 1:
            raise ValueError("need at least one DIMM and one bank")
        if self.ranks_per_dimm < 1:
            raise ValueError("need at least one rank per DIMM")
        if self.cacheline_bytes & (self.cacheline_bytes - 1):
            raise ValueError("cacheline_bytes must be a power of two")
        if self.page_bytes % self.cacheline_bytes:
            raise ValueError("page_bytes must be a multiple of cacheline_bytes")
        if self.prefetch.enabled and self.kind is not MemoryKind.FBDIMM:
            raise ValueError("AMB prefetching requires an FB-DIMM memory system")
        if self.tFAW_ns < 0:
            raise ValueError("tFAW_ns must be >= 0")
        # Late import: repro.dram.devices builds its presets *from* the
        # timing/power dataclasses this module defines.
        from repro.dram.devices import DEVICE_PRESETS

        if self.device not in DEVICE_PRESETS:
            known = ", ".join(sorted(DEVICE_PRESETS))
            raise ValueError(
                f"unknown device preset {self.device!r}; known presets: {known}"
            )

    @property
    def physical_channels(self) -> int:
        """Total number of physical channels."""
        return self.logic_channels * self.physical_per_logic

    @property
    def dram_clock_ps(self) -> int:
        """One DRAM clock period in picoseconds."""
        return DRAM_CLOCK_PS[self.data_rate_mts]

    @property
    def frame_ps(self) -> int:
        """One FB-DIMM frame: two DRAM clocks (32 B northbound per frame)."""
        return 2 * self.dram_clock_ps

    @property
    def burst_clocks(self) -> int:
        """DRAM clocks of data-bus occupancy for one cacheline burst.

        A 64 B line over the 8 B DDR2 data path is 8 beats = 4 clocks.
        """
        beats = self.cacheline_bytes // 8
        return max(1, beats // 2)

    @property
    def lines_per_page(self) -> int:
        """Cachelines per DRAM page (row)."""
        return self.page_bytes // self.cacheline_bytes

    @property
    def interleave_lines(self) -> int:
        """Interleaving granularity in cachelines."""
        if self.interleave is InterleaveScheme.CACHELINE:
            return 1
        if self.interleave is InterleaveScheme.MULTI_CACHELINE:
            return self.prefetch.region_cachelines
        return self.lines_per_page

    def peak_bandwidth_gbs(self) -> float:
        """Aggregate peak channel bandwidth in GB/s.

        DDR2: 8 B x data rate per physical channel.  FB-DIMM: the northbound
        link matches one DDR2 channel and the southbound adds half of that
        again for writes (Section 2).
        """
        per_channel = 8 * self.data_rate_mts / 1000.0
        if self.kind is MemoryKind.FBDIMM:
            per_channel *= 1.5
        return per_channel * self.physical_channels


@dataclass(frozen=True)
class CpuConfig:
    """Processor-side parameters (Table 1, pipeline rows).

    Only the parameters that the memory system can observe are modelled:
    clock rate, reorder window, and miss concurrency.  Issue width and
    functional-unit mix are folded into each program's base IPC.
    """

    num_cores: int = 1
    clock_ghz: float = 4.0
    rob_entries: int = 196
    l2_mshr_entries: int = 64
    data_mshr_entries: int = 32  # per-core data-cache MSHRs
    l2_hit_latency_cycles: int = 15
    store_buffer_entries: int = 32
    #: Hardware stream prefetcher at the L2 (off by default; the paper
    #: only evaluates software prefetching but expects "similar" results
    #: with hardware prefetching, Section 5.4).  Degree = lines fetched
    #: ahead once a stream is detected.
    hw_prefetch_degree: int = 0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.clock_ghz <= 0:
            raise ValueError("clock rate must be positive")
        if self.hw_prefetch_degree < 0:
            raise ValueError("hw_prefetch_degree must be >= 0")

    @property
    def cycle_ps(self) -> int:
        """Core clock period in picoseconds."""
        return round(1000.0 / self.clock_ghz)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to construct one simulated system."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    software_prefetch: bool = True
    instructions_per_core: int = 300_000
    #: Instructions (on the first core to get there) before measurement
    #: starts; warm-up activity is discarded from all reported statistics,
    #: SimPoint-style.  0 measures from the beginning.
    warmup_instructions: int = 0
    seed: int = 12345
    #: Opt-in runtime protocol assertion layer: journal every DRAM command
    #: and FB-DIMM frame booking and run :mod:`repro.check` over the stream
    #: when the run ends (System.run raises ProtocolViolationError on any
    #: violation).  Off by default — journalling costs memory and time.
    check_protocol: bool = False
    #: Seeded link-layer fault injection (see :class:`FaultConfig`).
    #: Disabled by default: a default-config run is bit-identical to a
    #: build without the fault subsystem at all.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Sim-time-windowed telemetry (see :class:`TimelineConfig`).
    #: Disabled by default for the same bit-identity guarantee.
    timeline: TimelineConfig = field(default_factory=TimelineConfig)

    def __post_init__(self) -> None:
        if not 0 <= self.warmup_instructions < self.instructions_per_core:
            raise ValueError(
                "warmup_instructions must be in [0, instructions_per_core)"
            )
        if self.faults.enabled and self.memory.kind is not MemoryKind.FBDIMM:
            raise ValueError(
                "fault injection models the FB-DIMM link layer; "
                "memory.kind must be FBDIMM when faults.enabled"
            )

    def with_memory(self, **changes: object) -> "SystemConfig":
        """Return a copy with the memory config fields replaced."""
        return replace(self, memory=replace(self.memory, **changes))

    def with_prefetch(self, **changes: object) -> "SystemConfig":
        """Return a copy with the AMB-prefetch config fields replaced."""
        prefetch = replace(self.memory.prefetch, **changes)
        memory = replace(self.memory, prefetch=prefetch)
        if prefetch.enabled and memory.interleave is InterleaveScheme.CACHELINE:
            memory = replace(memory, interleave=InterleaveScheme.MULTI_CACHELINE)
        return replace(self, memory=memory)

    def with_cpu(self, **changes: object) -> "SystemConfig":
        """Return a copy with the CPU config fields replaced."""
        return replace(self, cpu=replace(self.cpu, **changes))

    def with_device(self, name: str) -> "SystemConfig":
        """Return a copy resolved onto a device-generation preset.

        Applies the preset's organization, timings, refresh pair, tFAW
        and data rate (see
        :meth:`repro.dram.devices.DeviceSpec.memory_overrides`); channel
        topology, interleave and prefetch policy are orthogonal to the
        generation and survive unchanged.  ``with_device("ddr2-667")`` on
        a default config is value-identical to the config itself.
        """
        from repro.dram.devices import device_spec

        return self.with_memory(**device_spec(name).memory_overrides())

    def with_faults(self, **changes: object) -> "SystemConfig":
        """Return a copy with the fault-injection config fields replaced.

        ``with_faults(error_rate=1e-6)`` implies ``enabled=True`` unless
        ``enabled`` is passed explicitly — asking for faults is opting in.
        """
        if changes and "enabled" not in changes:
            changes["enabled"] = True
        return replace(self, faults=replace(self.faults, **changes))

    def with_timeline(self, **changes: object) -> "SystemConfig":
        """Return a copy with the timeline config fields replaced.

        ``with_timeline(...)`` implies ``enabled=True`` unless ``enabled``
        is passed explicitly — asking for a timeline is opting in, so
        ``cfg.with_timeline()`` alone turns windowed telemetry on with
        the defaults.
        """
        if "enabled" not in changes:
            changes["enabled"] = True
        return replace(self, timeline=replace(self.timeline, **changes))

    def to_dict(self) -> dict:
        """JSON-compatible encoding (enums by name, nested dataclasses
        as objects); the exact inverse of :meth:`from_dict`."""
        from repro.serialize import encode_value

        return encode_value(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "SystemConfig":
        """Rebuild a config from :meth:`to_dict` output.  Unknown keys are
        ignored and missing keys take the field defaults, so configs written
        by older code versions still load."""
        from repro.serialize import decode_value

        return decode_value(raw, cls)


def ddr2_baseline(num_cores: int = 1, **memory_overrides: object) -> SystemConfig:
    """The paper's DDR2 reference system: cacheline interleave, close page."""
    memory = MemoryConfig(
        kind=MemoryKind.DDR2,
        interleave=InterleaveScheme.CACHELINE,
        page_policy=PagePolicy.CLOSE_PAGE,
        prefetch=AmbPrefetchConfig(enabled=False),
        **memory_overrides,
    )
    return SystemConfig(cpu=CpuConfig(num_cores=num_cores), memory=memory)


def fbdimm_baseline(num_cores: int = 1, **memory_overrides: object) -> SystemConfig:
    """Plain FB-DIMM without AMB prefetching (FBD in the figures)."""
    memory = MemoryConfig(
        kind=MemoryKind.FBDIMM,
        interleave=InterleaveScheme.CACHELINE,
        page_policy=PagePolicy.CLOSE_PAGE,
        prefetch=AmbPrefetchConfig(enabled=False),
        **memory_overrides,
    )
    return SystemConfig(cpu=CpuConfig(num_cores=num_cores), memory=memory)


def fbdimm_amb_prefetch(
    num_cores: int = 1,
    prefetch: Optional[AmbPrefetchConfig] = None,
    **memory_overrides: object,
) -> SystemConfig:
    """FB-DIMM with AMB prefetching (FBD-AP): multi-cacheline interleave
    and close page by default; both may be overridden (e.g. page
    interleaving with open page, Figure 2's second layout)."""
    prefetch = prefetch or AmbPrefetchConfig(enabled=True)
    memory_overrides.setdefault("interleave", InterleaveScheme.MULTI_CACHELINE)
    memory_overrides.setdefault("page_policy", PagePolicy.CLOSE_PAGE)
    memory = MemoryConfig(
        kind=MemoryKind.FBDIMM,
        prefetch=prefetch,
        **memory_overrides,
    )
    return SystemConfig(cpu=CpuConfig(num_cores=num_cores), memory=memory)
