"""Logic-DRAM-bank state machine.

One :class:`Bank` models a *logic* bank — all physical banks of a rank that
are precharged, activated and column-accessed in lockstep (Section 3.2).
It enforces the Table 2 constraints and supports both page policies:

* **close page** (default for cacheline / multi-cacheline interleaving):
  every access is ACT -> column command(s) -> auto-precharge, so the bank's
  externally visible state is just "when can the next ACT start";
* **open page** (for page interleaving): the row stays open and a row hit
  skips straight to the column access.

A multi-cacheline group fetch (the AMB issuing K pipelined column accesses,
Section 3.2) is a single ACT followed by K reads whose bursts queue on the
DIMM data bus.

Hot-path layout: every class here carries ``__slots__``, and the per-issue
constraint arithmetic consumes the offsets precomputed by
:meth:`~repro.dram.timing.TimingPs.per_command_table` (materialised as
plain instance integers at construction) instead of re-deriving them from
the individual Table 2 constraints on every command.  The pre-rewrite
branchy implementation survives as ``tests/_legacy_bank.py``, the oracle
the property suite differentials this file against.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional

from repro.config import PagePolicy
from repro.dram.commands import CommandRecord, CommandType
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs


class BankStats:
    """DRAM operation counters, the input to the power model (Section 5.5).

    The bare class-level annotations are load-bearing: the counter-drift
    lint (``repro.check.lint.rules.counterdrift``) reconciles every
    annotated field against its increment sites and the channel
    controllers' ``collect_device_counters`` export surface, so a new
    counter cannot silently go unreported.
    """

    __slots__ = (
        "activates", "precharges", "reads", "writes",
        "row_hits", "row_misses", "refreshes",
        "faw_stalls", "faw_stall_ps",
    )

    activates: int
    #: Close-page auto-precharges mirror ``activates`` one-for-one, so the
    #: export surfaces report activates only.
    precharges: int  # repro: ignore[stat-unreported, stat-unregistered]
    reads: int
    writes: int
    row_hits: int
    row_misses: int
    refreshes: int
    #: ACTs delayed by the four-activate window, and the total delay.
    faw_stalls: int
    faw_stall_ps: int

    def __init__(self) -> None:
        self.activates = 0
        self.precharges = 0
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.refreshes = 0
        self.faw_stalls = 0
        self.faw_stall_ps = 0


class RankTimer:
    """Cross-bank constraints shared by the banks of one rank.

    tRRD separates ACTs to different banks; tWTR separates the end of write
    data from the next read command on the same rank.

    ``pending_rd_cmds`` records the command instants of reads already
    committed on this rank (transactions are issued atomically, so commands
    can be committed ahead of simulated time).  A later write whose data
    burst backfills an earlier bus hole must not land so that a committed
    read command falls inside its wire-order tWTR window — that read was
    gated on the writes known *when it issued*, not on this one.
    """

    __slots__ = (
        "next_act_ok", "read_ok_after_write", "pending_rd_cmds", "act_times",
    )

    def __init__(self) -> None:
        self.next_act_ok = 0
        self.read_ok_after_write = 0
        self.pending_rd_cmds: List[int] = []
        #: Issue times of the most recent ACTs on this rank (at most four
        #: kept), for the tFAW sliding window.  Only maintained by banks
        #: whose spec enables tFAW; recorded times are monotone
        #: non-decreasing because every ACT is gated on ``next_act_ok``.
        self.act_times: List[int] = []

    def act_gate(self, earliest: int) -> int:
        """Earliest time an ACT may issue respecting tRRD."""
        gate = self.next_act_ok
        return earliest if earliest >= gate else gate

    def note_act(self, act_time: int, tRRD: int) -> None:
        """Record an ACT so the next one (any bank) waits tRRD."""
        ok = act_time + tRRD
        if ok > self.next_act_ok:
            self.next_act_ok = ok

    def note_write_data_end(self, end_time: int, tWTR: int) -> None:
        """Record the end of a write burst; reads must wait tWTR."""
        ok = end_time + tWTR
        if ok > self.read_ok_after_write:
            self.read_ok_after_write = ok

    def note_read_cmd(self, cmd_time: int, now: int) -> None:
        """Record a committed RD command instant.

        Entries at or before ``now`` can never conflict with a future write
        (writes always place their command at or after the current time),
        so they are dropped here to keep the list at in-flight size.
        """
        cmds = self.pending_rd_cmds
        if cmds and cmds[0] <= now:
            self.pending_rd_cmds = cmds = [c for c in cmds if c > now]
        insort(cmds, cmd_time)

    def read_in_window(self, wr_cmd: int, window_end: int) -> Optional[int]:
        """Latest committed read command in ``[wr_cmd, window_end)``."""
        hit: Optional[int] = None
        for cmd in self.pending_rd_cmds:  # sorted ascending
            if cmd >= window_end:
                break
            if cmd >= wr_cmd:
                hit = cmd
        return hit


class AccessResult:
    """Timing outcome of one bank access.

    Attributes:
        command_start: When the first DRAM command (ACT or column) issued.
        data_times: Completion time of each cacheline's burst on the DIMM
            data bus, in fetch order (demanded line first for group reads).
        data_starts: Start time of each burst (for forwarding pipelining).
        row_hit: True when an open-page access found the row already open.
    """

    __slots__ = ("command_start", "data_times", "data_starts", "row_hit")

    def __init__(
        self,
        command_start: int,
        data_times: Optional[List[int]] = None,
        data_starts: Optional[List[int]] = None,
        row_hit: bool = False,
    ) -> None:
        self.command_start = command_start
        self.data_times: List[int] = [] if data_times is None else data_times
        self.data_starts: List[int] = [] if data_starts is None else data_starts
        self.row_hit = row_hit


class Bank:
    """State machine for one logic DRAM bank."""

    __slots__ = (
        "bank_id", "timing", "page_policy",
        "open_row", "ready_at", "column_ok", "precharge_ok",
        "stats", "command_log",
        # Precomputed timing table (per_command_table) plus the raw
        # constraints the row phase needs, as plain integers.
        "_open_page", "_rd_data_lead", "_rd_drain_step", "_rd_col_gate",
        "_wr_data_lead", "_wr_turnaround", "_wr_col_gate", "_retry_step",
        "_tRP", "_tRCD", "_tRRD", "_tRAS", "_tRC", "_tRPD", "_tWPD",
        "_tFAW",
    )

    def __init__(self, bank_id: int, timing: TimingPs, page_policy: PagePolicy) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.page_policy = page_policy
        self.open_row: Optional[int] = None
        self.ready_at = 0  # earliest next ACT (close page) / next row op
        self.column_ok = 0  # earliest next column command to the open row
        self.precharge_ok = 0  # earliest PRE honouring tRAS / tRPD / tWPD
        self.stats = BankStats()
        #: Optional per-command log (enable_trace); None keeps the hot
        #: path allocation-free.
        self.command_log: Optional[List[CommandRecord]] = None
        self._open_page = page_policy is PagePolicy.OPEN_PAGE
        table = timing.per_command_table()
        self._rd_data_lead = table["rd_data_lead"]
        self._rd_drain_step = table["rd_drain_step"]
        self._rd_col_gate = table["rd_col_gate"]
        self._wr_data_lead = table["wr_data_lead"]
        self._wr_turnaround = table["wr_turnaround"]
        self._wr_col_gate = table["wr_col_gate"]
        self._retry_step = table["retry_step"]
        self._tRP = timing.tRP
        self._tRCD = timing.tRCD
        self._tRRD = timing.tRRD
        self._tRAS = timing.tRAS
        self._tRC = timing.tRC
        self._tRPD = timing.tRPD
        self._tWPD = timing.tWPD
        # 0 for DDR2-class specs: the gate below is then never evaluated,
        # so the constraint is a provable no-op for the paper's device.
        self._tFAW = timing.tFAW

    def enable_trace(self) -> None:
        """Record every issued DRAM command (debugging/verification aid)."""
        if self.command_log is None:
            self.command_log = []

    def _log(self, kind: CommandType, time_ps: int, row: int) -> None:
        if self.command_log is not None:
            self.command_log.append(
                CommandRecord(kind=kind, time_ps=time_ps, bank_id=self.bank_id, row=row)
            )

    # ------------------------------------------------------------------
    # Scheduling estimates (used by the hit-first scheduler; no mutation)
    # ------------------------------------------------------------------

    def is_row_hit(self, row: int) -> bool:
        """Whether an open-page access to ``row`` would skip ACT."""
        return self._open_page and self.open_row == row

    def earliest_start(self, now: int, row: int, rank: RankTimer) -> int:
        """Estimate when the command chain for ``row`` could begin."""
        if not self._open_page:
            floor = self.ready_at
            if now > floor:
                floor = now
            gate = rank.next_act_ok
            start = floor if floor >= gate else gate
            return self._faw_gate(rank, start) if self._tFAW else start
        open_row = self.open_row
        if open_row == row:
            col = self.column_ok
            return col if col >= now else now
        if open_row is None:
            floor = self.ready_at
            if now > floor:
                floor = now
            gate = rank.next_act_ok
            start = floor if floor >= gate else gate
            return self._faw_gate(rank, start) if self._tFAW else start
        # Row conflict: precharge first.
        pre = self.precharge_ok
        return pre if pre >= now else now

    # ------------------------------------------------------------------
    # Accesses (mutating)
    # ------------------------------------------------------------------

    def read(
        self,
        now: int,
        row: int,
        num_lines: int,
        data_bus: BusResource,
        rank: RankTimer,
    ) -> AccessResult:
        """Read ``num_lines`` cachelines from ``row``.

        The first line is the demanded one; under AMB prefetching the
        remaining K-1 column accesses are pipelined behind it.
        """
        row_hit = self._open_page and self.open_row == row
        act_time, rd_floor = self._row_phase(now, row, rank, row_hit)
        if rank.read_ok_after_write > rd_floor:
            rd_floor = rank.read_ok_after_write
        first_rd_floor = rd_floor

        rd_lead = self._rd_data_lead
        rd_step = self._rd_drain_step
        burst = self._rd_col_gate
        reserve = data_bus.reserve
        note_read_cmd = rank.note_read_cmd
        data_starts: List[int] = []
        data_times: List[int] = []
        last_rd = rd_floor
        for _ in range(num_lines):
            start = reserve(rd_floor + rd_lead, burst)
            data_starts.append(start)
            data_times.append(start + burst)
            last_rd = start - rd_lead  # effective RD command instant
            note_read_cmd(last_rd, now)
            rd_floor = start + rd_step  # next RD gated by bus drain
        stats = self.stats
        stats.reads += num_lines
        if row_hit:
            stats.row_hits += 1
        elif self._open_page:
            stats.row_misses += 1
        if self.command_log is not None:
            for start in data_starts:
                self._log(CommandType.READ, start - rd_lead, row)

        self._close_or_keep(act_time, last_rd, is_write=False, row=row)
        command_start = act_time if act_time is not None else first_rd_floor
        return AccessResult(
            command_start=command_start,
            data_times=data_times,
            data_starts=data_starts,
            row_hit=row_hit,
        )

    def write(
        self,
        now: int,
        row: int,
        data_bus: BusResource,
        rank: RankTimer,
    ) -> AccessResult:
        """Write one cacheline to ``row``."""
        row_hit = self._open_page and self.open_row == row
        act_time, wr_floor = self._row_phase(now, row, rank, row_hit)
        # Wire-order tWTR guard: if the candidate slot would put a
        # committed read command inside this write's data-end + tWTR
        # window, push the write past that read command and retry.
        wr_lead = self._wr_data_lead
        burst = self._rd_col_gate
        turnaround = self._wr_turnaround
        probe = data_bus.probe
        read_in_window = rank.read_in_window
        while True:
            candidate = probe(wr_floor + wr_lead, burst)
            wr_cmd = candidate - wr_lead
            conflict = read_in_window(wr_cmd, wr_cmd + turnaround)
            if conflict is None:
                break
            wr_floor = conflict + self._retry_step
        data_start = data_bus.reserve(wr_floor + wr_lead, burst)
        data_end = data_start + burst
        wr_time = data_start - wr_lead
        rank.note_write_data_end(data_end, self.timing.tWTR)
        if self.command_log is not None:
            self._log(CommandType.WRITE, wr_time, row)
        stats = self.stats
        stats.writes += 1
        if row_hit:
            stats.row_hits += 1
        elif self._open_page:
            stats.row_misses += 1

        self._close_or_keep(act_time, wr_time, is_write=True, row=row)
        command_start = act_time if act_time is not None else wr_floor
        return AccessResult(
            command_start=command_start,
            data_times=[data_end],
            data_starts=[data_start],
            row_hit=row_hit,
        )

    def refresh(self, now: int, trfc_ps: int) -> None:
        """All-bank refresh: the bank is unavailable for tRFC and any open
        row is closed.  Commands already scheduled keep their timing (the
        controller is assumed to slot refreshes into idle windows)."""
        busy_until = max(now, self.ready_at) + trfc_ps
        self.ready_at = busy_until
        self.column_ok = max(self.column_ok, busy_until)
        self.precharge_ok = max(self.precharge_ok, busy_until)
        self.open_row = None
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _faw_gate(self, rank: RankTimer, start: int) -> int:
        """Push an ACT estimate past the four-activate window (no mutation).

        Only called when ``self._tFAW`` is non-zero.  ``act_times`` holds
        the last four ACT instants in ascending order, so the window gate
        is simply the oldest entry plus tFAW.
        """
        acts = rank.act_times
        if len(acts) == 4:
            faw = acts[0] + self._tFAW
            if faw > start:
                return faw
        return start

    def _row_phase(
        self, now: int, row: int, rank: RankTimer, row_hit: bool
    ) -> "tuple[Optional[int], int]":
        """Run the PRE/ACT part of an access.

        Returns (act_time or None, earliest column-command time).
        """
        if row_hit:
            col = self.column_ok
            return None, col if col >= now else now

        if self._open_page and self.open_row is not None:
            pre_time = self.precharge_ok
            if now > pre_time:
                pre_time = now
            self.stats.precharges += 1
            if self.command_log is not None:
                self._log(CommandType.PRECHARGE, pre_time, row)
            act_floor = pre_time + self._tRP
        else:
            act_floor = self.ready_at
            if now > act_floor:
                act_floor = now
        gate = rank.next_act_ok
        act_time = act_floor if act_floor >= gate else gate
        if self._tFAW:
            acts = rank.act_times
            if len(acts) == 4:
                faw_gate = acts[0] + self._tFAW
                if faw_gate > act_time:
                    self.stats.faw_stalls += 1
                    self.stats.faw_stall_ps += faw_gate - act_time
                    act_time = faw_gate
                del acts[0]
            acts.append(act_time)
        act_ok = act_time + self._tRRD
        if act_ok > gate:
            rank.next_act_ok = act_ok
        self.stats.activates += 1
        if self.command_log is not None:
            self._log(CommandType.ACTIVATE, act_time, row)
        return act_time, act_time + self._tRCD

    def _close_or_keep(
        self, act_time: Optional[int], last_col: int, is_write: bool, row: int
    ) -> None:
        """Apply post-access state: auto-precharge or keep the row open."""
        col_to_pre = self._tWPD if is_write else self._tRPD
        if not self._open_page:
            act = act_time if act_time is not None else last_col
            pre_time = act + self._tRAS
            drain = last_col + col_to_pre
            if drain > pre_time:
                pre_time = drain
            self.stats.precharges += 1
            if self.command_log is not None:
                self._log(CommandType.PRECHARGE, pre_time, row)
            ready = act + self._tRC
            recovered = pre_time + self._tRP
            self.ready_at = ready if ready >= recovered else recovered
            self.open_row = None
        else:
            self.open_row = row
            self.column_ok = last_col + (
                self._wr_col_gate if is_write else self._rd_col_gate
            )
            drain = last_col + col_to_pre
            if act_time is not None:
                pre_ok = act_time + self._tRAS
                self.precharge_ok = pre_ok if pre_ok >= drain else drain
                self.ready_at = act_time + self._tRC
            elif drain > self.precharge_ok:
                self.precharge_ok = drain
