"""Precomputed picosecond timing bundle.

:class:`~repro.config.DramTimings` stores the paper's Table 2 values in
nanoseconds for readability; the simulator converts them once into this
integer-picosecond bundle so the hot path never touches floats.

:meth:`TimingPs.per_command_table` goes one step further: it folds the
constraint arithmetic each DRAM command performs per issue (burst drain
steps, turnaround windows, open-row column gates) into plain integers.
:class:`~repro.dram.bank.Bank` materialises the table once at construction
so its per-access code adds precomputed offsets instead of re-deriving
them from the individual constraints on every command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import DramTimings
from repro.engine.simulator import ns


@dataclass(frozen=True)
class TimingPs:
    """All DRAM timing constraints in picoseconds, plus derived values."""

    tRP: int
    tRCD: int
    tCL: int
    tRC: int
    tRRD: int
    tRPD: int
    tWTR: int
    tRAS: int
    tWL: int
    tWPD: int
    clock: int  # DRAM clock period
    burst: int  # data-bus occupancy of one cacheline burst
    #: Four-activate window per rank; 0 (the DDR2 default) disables the
    #: constraint entirely — the bank hot path never touches it then.
    tFAW: int = 0

    def per_command_table(self) -> Dict[str, int]:
        """Derived per-command offsets, precomputed for the bank hot path.

        Keys (all picoseconds):

        * ``rd_data_lead`` — RD command to burst start (tCL).
        * ``rd_drain_step`` — how much later the *next* pipelined RD of a
          group fetch may issue once a burst lands: burst - tCL.
        * ``rd_col_gate`` — open-page column gate advance after a read's
          last column command (burst).
        * ``wr_data_lead`` — WR command to burst start (tWL).
        * ``wr_turnaround`` — WR command to end of its tWTR read exclusion
          window: tWL + burst + tWTR.
        * ``wr_col_gate`` — open-page column gate advance after a write's
          column command: tWL + burst.
        * ``retry_step`` — how far a blocked write slides past a committed
          read command (one DRAM clock).

        The method recomputes from the base constraints on every call; it
        exists so tests can check the folded values against the formulas
        while :class:`~repro.dram.bank.Bank` caches the result once.
        """
        return {
            "rd_data_lead": self.tCL,
            "rd_drain_step": self.burst - self.tCL,
            "rd_col_gate": self.burst,
            "wr_data_lead": self.tWL,
            "wr_turnaround": self.tWL + self.burst + self.tWTR,
            "wr_col_gate": self.tWL + self.burst,
            "retry_step": self.clock,
        }

    @classmethod
    def from_config(
        cls,
        timings: DramTimings,
        dram_clock_ps: int,
        burst_clocks: int,
        tfaw_ns: float = 0.0,
    ) -> "TimingPs":
        """Convert a ns-based :class:`DramTimings` at a given data rate."""
        return cls(
            tRP=ns(timings.tRP),
            tRCD=ns(timings.tRCD),
            tCL=ns(timings.tCL),
            tRC=ns(timings.tRC),
            tRRD=ns(timings.tRRD),
            tRPD=ns(timings.tRPD),
            tWTR=ns(timings.tWTR),
            tRAS=ns(timings.tRAS),
            tWL=ns(timings.tWL),
            tWPD=ns(timings.tWPD),
            clock=dram_clock_ps,
            burst=burst_clocks * dram_clock_ps,
            tFAW=ns(tfaw_ns),
        )
