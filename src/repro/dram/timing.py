"""Precomputed picosecond timing bundle.

:class:`~repro.config.DramTimings` stores the paper's Table 2 values in
nanoseconds for readability; the simulator converts them once into this
integer-picosecond bundle so the hot path never touches floats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramTimings
from repro.engine.simulator import ns


@dataclass(frozen=True)
class TimingPs:
    """All DRAM timing constraints in picoseconds, plus derived values."""

    tRP: int
    tRCD: int
    tCL: int
    tRC: int
    tRRD: int
    tRPD: int
    tWTR: int
    tRAS: int
    tWL: int
    tWPD: int
    clock: int  # DRAM clock period
    burst: int  # data-bus occupancy of one cacheline burst

    @classmethod
    def from_config(
        cls, timings: DramTimings, dram_clock_ps: int, burst_clocks: int
    ) -> "TimingPs":
        """Convert a ns-based :class:`DramTimings` at a given data rate."""
        return cls(
            tRP=ns(timings.tRP),
            tRCD=ns(timings.tRCD),
            tCL=ns(timings.tCL),
            tRC=ns(timings.tRC),
            tRRD=ns(timings.tRRD),
            tRPD=ns(timings.tRPD),
            tWTR=ns(timings.tWTR),
            tRAS=ns(timings.tRAS),
            tWL=ns(timings.tWL),
            tWPD=ns(timings.tWPD),
            clock=dram_clock_ps,
            burst=burst_clocks * dram_clock_ps,
        )
