"""Backfilling bus resources.

A :class:`BusResource` models a wire that carries one thing at a time:
the DDR2 shared command bus, the DDR2 shared data bus, a DIMM's private DDR2
data bus behind an AMB, and the FB-DIMM southbound/northbound links.

Reservations *backfill*: a request asks for the earliest ``duration``-long
gap at or after its ready time, so a transfer that becomes ready early is
not stuck behind one reserved further in the future (no head-of-line
blocking between independent banks/DIMMs).  The number of outstanding
future reservations is bounded by the channel controllers' in-flight caps,
so the gap search stays O(few).

All callers reserve with ``earliest >= sim.now``, which makes pruning of
reservations that end at or before the current time safe.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple


class BusResource:
    """A single-owner bus with busy-interval tracking and backfill."""

    __slots__ = ("name", "busy_ps", "_intervals")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_ps = 0  # total occupied time, for utilisation stats
        self._intervals: List[Tuple[int, int]] = []  # sorted (start, end)

    def reserve(self, earliest: int, duration: int) -> int:
        """Reserve ``duration`` ps in the first gap at/after ``earliest``.

        Returns the granted start time (>= ``earliest``).
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        start = self._find_gap(earliest, duration)
        end = start + duration
        bisect.insort(self._intervals, (start, end))
        self.busy_ps += duration
        return start

    def next_free(self, earliest: int) -> int:
        """Earliest start a new zero-length probe would get (no booking)."""
        return self._find_gap(earliest, 1)

    def probe(self, earliest: int, duration: int) -> int:
        """Where ``reserve(earliest, duration)`` would land, without booking."""
        return self._find_gap(earliest, duration)

    def prune_before(self, time_ps: int) -> None:
        """Drop reservations that ended at or before ``time_ps``.

        Only safe with the invariant that future ``reserve`` calls use
        ``earliest >= time_ps`` — which holds because every caller reserves
        at or after the current simulation time.
        """
        intervals = self._intervals
        for iv in intervals:
            if iv[1] <= time_ps:
                break
        else:
            return  # nothing expired: skip the rebuild allocation
        self._intervals = [iv for iv in intervals if iv[1] > time_ps]

    def utilisation(self, elapsed_ps: int) -> float:
        """Fraction of ``elapsed_ps`` the bus spent occupied."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / elapsed_ps)

    @property
    def free_at(self) -> int:
        """End of the last current reservation (0 when idle)."""
        return self._intervals[-1][1] if self._intervals else 0

    def _find_gap(self, earliest: int, duration: int) -> int:
        start = earliest
        fits_at = earliest + duration
        for interval_start, interval_end in self._intervals:
            if fits_at <= interval_start:
                break
            if interval_end > start:
                start = interval_end
                fits_at = start + duration
        return start


class TaggedBusResource:
    """A shared bidirectional bus with switching bubbles.

    Models the DDR2 channel data bus: back-to-back bursts with different
    *tags* (direction, rank) must be separated by ``switch_gap_ps`` of dead
    time — the read/write turnaround and rank-to-rank switching bubbles
    that cap a real DDR2 channel's efficiency well below 100 %.  FB-DIMM's
    unidirectional links have no such bubbles, which is precisely the
    utilisation advantage the paper measures (Section 5.1).
    """

    __slots__ = ("name", "switch_gap_ps", "busy_ps", "_intervals")

    def __init__(self, name: str, switch_gap_ps: int) -> None:
        self.name = name
        self.switch_gap_ps = switch_gap_ps
        self.busy_ps = 0
        self._intervals: List[Tuple[int, int, object]] = []  # (start, end, tag)

    def reserve(self, earliest: int, duration: int, tag: object = None) -> int:
        """Reserve the first feasible slot honouring switch gaps."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        start = self._find_gap(earliest, duration, tag)
        bisect.insort(self._intervals, (start, start + duration, tag))
        self.busy_ps += duration
        return start

    def next_free(self, earliest: int, tag: object = None) -> int:
        """Earliest feasible start without booking."""
        return self._find_gap(earliest, 1, tag)

    def probe(self, earliest: int, duration: int, tag: object = None) -> int:
        """Where ``reserve`` would land, without booking."""
        return self._find_gap(earliest, duration, tag)

    def prune_before(self, time_ps: int) -> None:
        """Drop reservations that ended at or before ``time_ps``.

        The most recent expired reservation is kept so a new reservation
        immediately after it still pays the switch gap against it.
        """
        intervals = self._intervals
        if len(intervals) <= 1:
            return
        for iv in intervals:
            if iv[1] <= time_ps:
                break
        else:
            return  # nothing expired: skip the rebuild allocation
        keep = [iv for iv in intervals if iv[1] > time_ps]
        if not keep:
            keep = [intervals[-1]]
        self._intervals = keep

    def utilisation(self, elapsed_ps: int) -> float:
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / elapsed_ps)

    @property
    def free_at(self) -> int:
        return self._intervals[-1][1] if self._intervals else 0

    def _gap_after_ps(self, other_tag: object, tag: object) -> int:
        return 0 if other_tag == tag else self.switch_gap_ps

    def _find_gap(self, earliest: int, duration: int, tag: object) -> int:
        start = earliest
        switch_gap = self.switch_gap_ps
        for iv_start, iv_end, iv_tag in self._intervals:
            lead = 0 if iv_tag == tag else switch_gap
            if start + duration + lead <= iv_start:
                # Fits before this interval; also respect the previous one.
                break
            shifted = iv_end + lead
            if shifted > start:
                start = shifted
        return start


class BusView:
    """Binds a tag to a shared :class:`TaggedBusResource`.

    Banks reserve data-bus time without knowing who they are; a view makes
    one (direction, rank) identity look like a plain bus.
    """

    __slots__ = ("bus", "tag")

    def __init__(self, bus: TaggedBusResource, tag: object) -> None:
        self.bus = bus
        self.tag = tag

    @property
    def name(self) -> str:
        return f"{self.bus.name}[{self.tag}]"

    def reserve(self, earliest: int, duration: int) -> int:
        return self.bus.reserve(earliest, duration, self.tag)

    def next_free(self, earliest: int) -> int:
        return self.bus.next_free(earliest, self.tag)

    def probe(self, earliest: int, duration: int) -> int:
        return self.bus.probe(earliest, duration, self.tag)
