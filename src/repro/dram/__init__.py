"""DDR2 device-level model: banks, timing, and command accounting.

The logic DRAM bank (all physical banks of a rank operated in lockstep,
Section 3.2) is the unit of state here.  Banks enforce the Table 2 timing
constraints and report every activate/precharge pair and column access so the
power model can count them.
"""

from repro.dram.bank import Bank, BankStats
from repro.dram.commands import CommandType
from repro.dram.timing import TimingPs
from repro.dram.resources import BusResource

__all__ = ["Bank", "BankStats", "CommandType", "TimingPs", "BusResource"]
