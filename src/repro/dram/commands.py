"""DRAM command vocabulary and per-command accounting records."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandType(enum.Enum):
    """The DRAM operations the power model cares about (Section 5.5)."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"


@dataclass(frozen=True)
class CommandRecord:
    """One issued DRAM command, for traces and debugging."""

    kind: CommandType
    time_ps: int
    bank_id: int
    row: int
