"""Declarative device-generation presets (the Ramulator-2 shape).

A device generation is *data, not code*: one :class:`DeviceSpec` bundles the
organization (banks, rows, page size), the timing parameters (Table-2 style
core timings plus the refresh pair tRFC/tREFI and the four-activate window
tFAW), the burst geometry, and the per-command energy weights of one DRAM
generation.  ``SystemConfig.with_device(name)`` resolves a preset from the
registry here into the one shared bank/channel state machine — the machine
never special-cases a generation; everything generation-specific lives in
the spec.

Shipped presets:

* ``ddr2-667``   — the paper's Table 2 device, *value-identical* to the
  :class:`~repro.config.MemoryConfig` defaults so results are pinned
  byte-for-byte by the conformance digests.
* ``ddr3-1333``  — JEDEC DDR3-1333H (CL9) at tCK = 1.5 ns, Micron 2 Gb x8
  class organization and IDD values.
* ``ddr4-2400``  — extrapolated one speed bin past the Ramulator 2
  ``DDR4.cpp`` timing table (1600J/1866L/2133N rows; SNIPPETS.md Snippet
  3) following its nCK progression, JEDEC DDR4-2400R (CL16), with the
  snippet's ``DDR4_4Gb_x8``-style 16-bank organization scaled to 8 Gb.
* ``lpddr4-2400`` — representative LPDDR4 mobile part at the same data
  rate as ``ddr4-2400`` but with LPDDR's low-power energy profile (1.1 V,
  x16 devices, deep power-down) — the energy-differentiated variant.

Every timing is stored in nanoseconds exactly as ``n x tCK`` of its bin so
the integer-picosecond conversion (``ns()``) is exact; provenance for each
value is asserted field-by-field in ``tests/test_device_specs.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.config import DRAM_CLOCK_PS, DramTimings
from repro.power.ddr2_power import MicronPowerCalculator
from repro.power.energy import CommandEnergyModel

__all__ = [
    "DeviceSpec",
    "DEVICE_PRESETS",
    "device_spec",
    "device_names",
]


@dataclass(frozen=True)
class DeviceSpec:
    """One DRAM generation as a declarative bundle of parameters.

    Attributes:
        name: Registry key (``ddr2-667`` etc.).
        generation: Device family label (``DDR2`` / ``DDR3`` / ...).
        data_rate_mts: Data rate in MT/s; must be a supported
            :data:`~repro.config.DRAM_CLOCK_PS` rate.
        timings: Core timing constraints in nanoseconds.
        tFAW_ns: Four-activate window per rank; 0 disables the constraint
            (DDR2's 4-bank devices predate tFAW).
        tREFI_ns: Average refresh interval per rank; 0 disables scheduled
            refresh (the paper's DDR2 model).
        tRFC_ns: Refresh cycle time — bank blackout per REF.
        banks_per_dimm: Logic banks per rank.
        page_bytes: Logic row size (chip page x chips per rank).
        rows_per_bank: Rows per logic bank.
        burst_length: Beats per cacheline burst on the 8 B data path.
        power: Datasheet IDD calculator for nanojoule accounting.
        energy: Per-command dynamic-energy weights in column-access units.
        notes: One-line provenance summary.
    """

    name: str
    generation: str
    data_rate_mts: int
    timings: DramTimings
    tFAW_ns: float = 0.0
    tREFI_ns: float = 0.0
    tRFC_ns: float = 127.5
    banks_per_dimm: int = 4
    page_bytes: int = 4096
    rows_per_bank: int = 16384
    burst_length: int = 8
    power: MicronPowerCalculator = field(default_factory=MicronPowerCalculator)
    energy: CommandEnergyModel = field(default_factory=CommandEnergyModel)
    notes: str = ""

    def __post_init__(self) -> None:
        if self.data_rate_mts not in DRAM_CLOCK_PS:
            raise ValueError(
                f"{self.name}: unsupported data rate {self.data_rate_mts}; "
                f"supported: {sorted(DRAM_CLOCK_PS)}"
            )
        for f in dataclasses.fields(DramTimings):
            value = getattr(self.timings, f.name)
            if value < 0:
                raise ValueError(
                    f"{self.name}: negative timing {f.name}={value}"
                )
        if self.timings.tRAS > self.timings.tRC:
            raise ValueError(
                f"{self.name}: tRAS={self.timings.tRAS} exceeds "
                f"tRC={self.timings.tRC}"
            )
        if self.burst_length < 1:
            raise ValueError(f"{self.name}: zero burst (burst_length < 1)")
        if self.tFAW_ns < 0:
            raise ValueError(f"{self.name}: negative tFAW {self.tFAW_ns}")
        if self.tREFI_ns < 0:
            raise ValueError(f"{self.name}: negative tREFI {self.tREFI_ns}")
        if self.tREFI_ns > 0 and self.tRFC_ns <= 0:
            raise ValueError(
                f"{self.name}: refresh enabled (tREFI={self.tREFI_ns}) "
                f"with non-positive tRFC={self.tRFC_ns}"
            )
        for name in ("banks_per_dimm", "page_bytes", "rows_per_bank"):
            if getattr(self, name) < 1:
                raise ValueError(f"{self.name}: {name} must be >= 1")

    @property
    def clock_ns(self) -> float:
        """One DRAM clock period in nanoseconds."""
        return DRAM_CLOCK_PS[self.data_rate_mts] / 1000.0

    @property
    def burst_clocks(self) -> int:
        """Data-bus occupancy of one burst in DRAM clocks (DDR: 2 beats
        per clock)."""
        return max(1, self.burst_length // 2)

    def memory_overrides(self) -> Dict[str, object]:
        """The :class:`~repro.config.MemoryConfig` fields this spec sets.

        ``SystemConfig.with_device`` applies exactly these; everything not
        listed (channel topology, interleave, prefetch, ...) is
        orthogonal to the device generation and survives unchanged.
        """
        return {
            "device": self.name,
            "data_rate_mts": self.data_rate_mts,
            "timings": self.timings,
            "tFAW_ns": self.tFAW_ns,
            "refresh_interval_ns": self.tREFI_ns,
            "refresh_cycle_ns": self.tRFC_ns,
            "banks_per_dimm": self.banks_per_dimm,
            "page_bytes": self.page_bytes,
            "rows_per_bank": self.rows_per_bank,
        }


# ----------------------------------------------------------------------
# Shipped presets.  Timings are written as exact multiples of the bin's
# tCK (comments give the nCK count) so ns() conversion loses nothing.
# ----------------------------------------------------------------------

#: The paper's device: Table 2 timings, 4-bank 1 Gb-class organization,
#: Micron DDR2-667 IDD values, and the paper's calibrated 4:1 energy
#: ratio.  Deliberately constructed from the *defaults* of every class it
#: references, so ``with_device("ddr2-667")`` leaves a default config
#: value-identical (and therefore digest-identical).
_DDR2_667 = DeviceSpec(
    name="ddr2-667",
    generation="DDR2",
    data_rate_mts=667,
    timings=DramTimings(),
    tFAW_ns=0.0,  # 4-bank DDR2 predates the tFAW constraint
    tREFI_ns=0.0,  # the paper does not model refresh
    tRFC_ns=127.5,
    banks_per_dimm=4,
    page_bytes=4096,
    rows_per_bank=16384,
    burst_length=8,
    power=MicronPowerCalculator(),
    energy=CommandEnergyModel(),
    notes="Paper Table 2 @ 667 MT/s; Micron 1 Gb DDR2-667 x8 IDD values",
)

#: JEDEC DDR3-1333H (CL9-9-9) at tCK = 1.5 ns; Micron 2 Gb x8
#: (MT41J256M8 class) organization and typical IDD values.
_DDR3_1333_POWER = MicronPowerCalculator(
    vdd=1.5,
    idd0=70.0,
    idd3n=35.0,
    idd4r=150.0,
    idd4w=155.0,
    idd2n=30.0,
    idd2p=12.0,
    idd5=180.0,
    t_rc_ns=49.5,
    t_rfc_ns=160.0,
    burst_ns=6.0,  # 8 beats = 4 clocks at 1.5 ns
    chips_per_rank=8,
)
_DDR3_1333 = DeviceSpec(
    name="ddr3-1333",
    generation="DDR3",
    data_rate_mts=1333,
    timings=DramTimings(
        tRP=13.5,  # 9 nCK
        tRCD=13.5,  # 9 nCK
        tCL=13.5,  # 9 nCK (CL9)
        tRC=49.5,  # 33 nCK = tRAS + tRP
        tRRD=6.0,  # 4 nCK (x8, 1 KB page)
        tRPD=7.5,  # tRTP = max(4 nCK, 7.5 ns)
        tWTR=7.5,  # max(4 nCK, 7.5 ns)
        tRAS=36.0,  # 24 nCK
        tWL=10.5,  # CWL = 7 nCK
        tWPD=31.5,  # tWL + burst (6.0) + tWR (15.0)
    ),
    tFAW_ns=30.0,  # 20 nCK (1 KB page)
    tREFI_ns=7800.0,
    tRFC_ns=160.0,  # 2 Gb device
    banks_per_dimm=8,
    page_bytes=8192,  # 1 KB chip page x 8 chips
    rows_per_bank=32768,
    burst_length=8,
    power=_DDR3_1333_POWER,
    energy=CommandEnergyModel.from_calculator(_DDR3_1333_POWER),
    notes="JEDEC DDR3-1333H CL9; Micron 2 Gb x8 class",
)

#: One speed bin past the Ramulator 2 DDR4 timing table (SNIPPETS.md
#: Snippet 3 commits 1600J/1866L/2133N and truncates; the 2400R row
#: follows the same nCK progression), JEDEC DDR4-2400R CL16, with the
#: snippet's 16-bank DDR4 organization scaled to an 8 Gb x8 part.
_DDR4_2400_POWER = MicronPowerCalculator(
    vdd=1.2,
    idd0=55.0,
    idd3n=42.0,
    idd4r=155.0,
    idd4w=150.0,
    idd2n=32.0,
    idd2p=22.0,
    idd5=250.0,
    t_rc_ns=45.815,
    t_rfc_ns=350.0,
    burst_ns=3.332,  # 8 beats = 4 clocks at 0.833 ns
    chips_per_rank=8,
)
_DDR4_2400 = DeviceSpec(
    name="ddr4-2400",
    generation="DDR4",
    data_rate_mts=2400,
    timings=DramTimings(
        tRP=13.328,  # 16 nCK (CL16 bin)
        tRCD=13.328,  # 16 nCK
        tCL=13.328,  # 16 nCK
        tRC=45.815,  # 55 nCK = tRAS + tRP
        tRRD=4.998,  # tRRD_L = 6 nCK
        tRPD=7.497,  # tRTP = 9 nCK
        tWTR=7.497,  # tWTR_L = 9 nCK
        tRAS=32.487,  # 39 nCK
        tWL=9.996,  # CWL = 12 nCK
        tWPD=28.328,  # tWL + burst (3.332) + tWR (15.0)
    ),
    tFAW_ns=21.658,  # 26 nCK (x8, 1 KB page)
    tREFI_ns=7800.0,
    tRFC_ns=350.0,  # 8 Gb device
    banks_per_dimm=16,  # 4 bank groups x 4 banks (snippet org)
    page_bytes=8192,  # 1 KB chip page x 8 chips
    rows_per_bank=32768,  # snippet DDR4_4Gb_x8 row count
    burst_length=8,
    power=_DDR4_2400_POWER,
    energy=CommandEnergyModel.from_calculator(_DDR4_2400_POWER),
    notes="Ramulator 2 DDR4 table extrapolated to 2400R (CL16); 8 Gb x8",
)

#: Representative LPDDR4-class mobile part at 2400 MT/s: same bin as
#: ddr4-2400 but 1.1 V, x16 devices (4 chips per 8 B rank), much lower
#: standby/power-down currents and the 8 Gb all-bank refresh pair
#: (tRFCab 280 ns at half the tREFI).  The energy-differentiated variant.
_LPDDR4_2400_POWER = MicronPowerCalculator(
    vdd=1.1,
    idd0=30.0,
    idd3n=12.0,
    idd4r=120.0,
    idd4w=115.0,
    idd2n=4.5,
    idd2p=0.8,
    idd5=60.0,
    t_rc_ns=60.0,
    t_rfc_ns=280.0,
    burst_ns=3.332,  # 8 beats = 4 clocks at 0.833 ns
    chips_per_rank=4,  # x16 devices
)
_LPDDR4_2400 = DeviceSpec(
    name="lpddr4-2400",
    generation="LPDDR4",
    data_rate_mts=2400,
    timings=DramTimings(
        tRP=18.0,  # tRPpb
        tRCD=18.0,
        tCL=17.493,  # RL = 21 nCK
        tRC=60.0,  # tRAS + tRPpb
        tRRD=8.33,  # 10 nCK
        tRPD=7.5,  # tRTP
        tWTR=10.0,
        tRAS=42.0,
        tWL=9.996,  # WL = 12 nCK
        tWPD=31.328,  # tWL + burst (3.332) + tWR (18.0)
    ),
    tFAW_ns=40.0,
    tREFI_ns=3904.0,  # all-bank refresh at 8 Gb density
    tRFC_ns=280.0,  # tRFCab, 8 Gb
    banks_per_dimm=8,
    page_bytes=8192,  # 2 KB chip page x 4 chips
    rows_per_bank=32768,
    burst_length=8,
    power=_LPDDR4_2400_POWER,
    energy=CommandEnergyModel.from_calculator(_LPDDR4_2400_POWER),
    notes="Representative 8 Gb LPDDR4 x16 @ 2400 MT/s; low-power IDDs",
)


#: Registry of shipped device generations, keyed by preset name.
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (_DDR2_667, _DDR3_1333, _DDR4_2400, _LPDDR4_2400)
}


def device_spec(name: str) -> DeviceSpec:
    """Resolve a preset by name; unknown names list what exists."""
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PRESETS))
        raise ValueError(
            f"unknown device preset {name!r}; known presets: {known}"
        ) from None


def device_names() -> Tuple[str, ...]:
    """All registered preset names, in registration (generation) order."""
    return tuple(DEVICE_PRESETS)
