"""Request-lifecycle tracing: one timestamped span per memory request.

A :class:`Tracer` is attached to a run (``System(config, programs,
tracer=Tracer())`` or ``run_system(..., tracer=...)``).  The controller and
channel engines call its hooks at each phase transition; every hook site is
guarded by ``if tracer is not None`` so an untraced run executes exactly
the seed instruction stream — tracing never schedules simulator events and
never touches the statistics counters.

Phases of one request (all times integer picoseconds):

``arrival``      the CPU side handed the request to the controller
``queued``       parked in the admission FIFO (64-entry buffer full)
``schedulable``  admitted to a channel queue, eligible for scheduling
``issue``        the scheduler picked it: first DRAM/AMB command
``retry``        a CRC replay booked under fault injection (may repeat)
``data``         first beat of its data burst (cut-through for AMB hits)
``complete``     critical data back at the controller / write retired
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.transaction import MemoryRequest

#: Canonical phase order; ``queued`` is optional (only backlogged
#: requests), ``retry`` only appears under fault injection and may repeat.
PHASES = ("arrival", "queued", "schedulable", "issue", "retry", "data", "complete")

#: Prefetch-instance span phases: ``issue`` when the group fetch books the
#: fill, ``fill`` when it commits into the tag store (absent for instances
#: that merged or died in flight), ``end`` when the instance reaches its
#: terminal outcome (see :mod:`repro.prefetch.lifecycle`).
PF_PHASES = ("issue", "fill", "end")

#: Terminal outcomes a prefetch span may close with.
PF_OUTCOMES = (
    "used", "evicted_unused", "late_unused", "invalidated", "resident_at_end",
)


@dataclass
class PrefetchTrace:
    """Timestamped lifecycle span of one prefetched-line instance."""

    line_addr: int
    phases: List[Tuple[str, int]] = field(default_factory=list)
    outcome: str = ""

    def mark(self, phase: str, time_ps: int) -> None:
        """Record one lifecycle phase transition."""
        if phase not in PF_PHASES:
            raise ValueError(f"unknown prefetch phase {phase!r}")
        self.phases.append((phase, time_ps))

    def close(self, outcome: str, time_ps: int) -> None:
        """Mark the terminal transition and record the outcome."""
        if outcome not in PF_OUTCOMES:
            raise ValueError(f"unknown prefetch outcome {outcome!r}")
        self.mark("end", time_ps)
        self.outcome = outcome

    def phase_time(self, phase: str) -> Optional[int]:
        """Time of the first occurrence of ``phase``, or None."""
        for name, time_ps in self.phases:
            if name == phase:
                return time_ps
        return None

    @property
    def fill_latency_ps(self) -> Optional[int]:
        """issue -> fill commit, when both phases were recorded."""
        start = self.phase_time("issue")
        fill = self.phase_time("fill")
        if start is None or fill is None:
            return None
        return fill - start

    @property
    def lifetime_ps(self) -> Optional[int]:
        """issue -> terminal outcome, when the span is closed."""
        start = self.phase_time("issue")
        end = self.phase_time("end")
        if start is None or end is None:
            return None
        return end - start

    # -- JSONL (de)serialisation ---------------------------------------

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "pf",
            "line": self.line_addr,
            "ph": [[name, t] for name, t in self.phases],
        }
        if self.outcome:
            record["out"] = self.outcome
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "PrefetchTrace":
        trace = cls(line_addr=int(record.get("line", -1)))  # type: ignore[arg-type]
        for name, time_ps in record.get("ph", []):  # type: ignore[union-attr]
            trace.phases.append((str(name), int(time_ps)))
        trace.outcome = str(record.get("out", ""))
        return trace


@dataclass
class RequestTrace:
    """Timestamped phase transitions of one memory request."""

    req_id: int
    kind: str  # RequestKind value: "read" / "sw_prefetch" / "write"
    core_id: int
    line_addr: int
    channel: int = -1
    dimm: int = -1
    rank: int = -1
    bank: int = -1
    amb_hit: bool = False
    row_hit: bool = False
    phases: List[Tuple[str, int]] = field(default_factory=list)

    def mark(self, phase: str, time_ps: int) -> None:
        """Record one phase transition."""
        if phase not in PHASES:
            raise ValueError(f"unknown request phase {phase!r}")
        self.phases.append((phase, time_ps))

    def phase_time(self, phase: str) -> Optional[int]:
        """Time of the first occurrence of ``phase``, or None."""
        for name, time_ps in self.phases:
            if name == phase:
                return time_ps
        return None

    @property
    def completed(self) -> bool:
        return self.phase_time("complete") is not None

    @property
    def latency_ps(self) -> Optional[int]:
        """arrival -> complete, when both phases were recorded."""
        start = self.phase_time("arrival")
        end = self.phase_time("complete")
        if start is None or end is None:
            return None
        return end - start

    @property
    def queue_delay_ps(self) -> Optional[int]:
        """schedulable -> issue (time lost waiting in a channel queue)."""
        ready = self.phase_time("schedulable")
        issue = self.phase_time("issue")
        if ready is None or issue is None:
            return None
        return max(0, issue - ready)

    # -- JSONL (de)serialisation ---------------------------------------

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "req",
            "id": self.req_id,
            "k": self.kind,
            "core": self.core_id,
            "line": self.line_addr,
            "ph": [[name, t] for name, t in self.phases],
        }
        for key, value in (
            ("ch", self.channel), ("d", self.dimm),
            ("r", self.rank), ("b", self.bank),
        ):
            if value >= 0:
                record[key] = value
        if self.amb_hit:
            record["amb"] = True
        if self.row_hit:
            record["row_hit"] = True
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "RequestTrace":
        trace = cls(
            req_id=int(record["id"]),  # type: ignore[arg-type]
            kind=str(record["k"]),
            core_id=int(record.get("core", -1)),  # type: ignore[arg-type]
            line_addr=int(record.get("line", -1)),  # type: ignore[arg-type]
            channel=int(record.get("ch", -1)),  # type: ignore[arg-type]
            dimm=int(record.get("d", -1)),  # type: ignore[arg-type]
            rank=int(record.get("r", -1)),  # type: ignore[arg-type]
            bank=int(record.get("b", -1)),  # type: ignore[arg-type]
            amb_hit=bool(record.get("amb", False)),
            row_hit=bool(record.get("row_hit", False)),
        )
        for name, time_ps in record.get("ph", []):  # type: ignore[union-attr]
            trace.mark(str(name), int(time_ps))
        return trace


class Tracer:
    """Collects request traces and per-phase latency histograms.

    Memory is bounded: once ``max_requests`` traces exist, further requests
    are counted in ``dropped`` but not recorded (the histograms still see
    every completion, so aggregate numbers stay exact).
    """

    def __init__(
        self, max_requests: int = 200_000, max_prefetches: int = 200_000
    ) -> None:
        self.max_requests = max_requests
        self.requests: Dict[int, RequestTrace] = {}
        self.dropped = 0
        #: Prefetch lifecycle spans, in issue order (fed by the
        #: PrefetchLifecycle tracker when both it and tracing are on).
        self.max_prefetches = max_prefetches
        self.prefetches: List[PrefetchTrace] = []
        self.dropped_prefetches = 0
        self.registry = MetricsRegistry()
        self._h_latency = self.registry.histogram(
            "trace.latency_ps", "arrival -> completion, traced reads+writes"
        )
        self._h_queue = self.registry.histogram(
            "trace.queue_delay_ps", "schedulable -> issue, traced requests"
        )
        self._h_service = self.registry.histogram(
            "trace.service_ps", "issue -> completion, traced requests"
        )
        self._c_stalled = self.registry.counter(
            "trace.stalled_requests", "requests that waited past schedulable"
        )
        self._c_retries = self.registry.counter(
            "trace.fault_retries", "CRC replays booked under fault injection"
        )

    # -- hooks (called by the controller layer) -------------------------

    def on_arrival(self, req: "MemoryRequest", now: int, backlogged: bool) -> None:
        """Request entered the controller; mapped address is known."""
        if len(self.requests) >= self.max_requests:
            self.dropped += 1
            return
        trace = RequestTrace(
            req_id=req.req_id,
            kind=req.kind.value,
            core_id=req.core_id,
            line_addr=req.line_addr,
        )
        if req.mapped is not None:
            trace.channel = req.mapped.channel
            trace.dimm = req.mapped.dimm
            trace.rank = req.mapped.rank
            trace.bank = req.mapped.bank
        trace.mark("arrival", now)
        if backlogged:
            trace.mark("queued", now)
        self.requests[req.req_id] = trace

    def on_schedulable(self, req: "MemoryRequest", time_ps: int) -> None:
        trace = self.requests.get(req.req_id)
        if trace is not None:
            trace.mark("schedulable", time_ps)

    def on_issue(self, req: "MemoryRequest", now: int) -> None:
        trace = self.requests.get(req.req_id)
        if trace is not None:
            trace.mark("issue", now)

    def on_retry(self, req: "MemoryRequest", time_ps: int) -> None:
        """A fault-injection replay was booked for this request."""
        self._c_retries.inc()
        trace = self.requests.get(req.req_id)
        if trace is not None:
            trace.mark("retry", time_ps)

    def on_data(self, req: "MemoryRequest", time_ps: int) -> None:
        trace = self.requests.get(req.req_id)
        if trace is not None:
            trace.mark("data", time_ps)

    def on_complete(self, req: "MemoryRequest", now: int) -> None:
        self._h_latency.observe(max(0, now - req.arrival))
        queue_delay = max(0, req.issue_time - req.schedulable_at)
        self._h_queue.observe(queue_delay)
        if queue_delay > 0:
            self._c_stalled.inc()
        if req.issue_time >= 0:
            self._h_service.observe(max(0, now - req.issue_time))
        trace = self.requests.get(req.req_id)
        if trace is not None:
            trace.mark("complete", now)
            trace.amb_hit = req.amb_hit
            trace.row_hit = req.row_hit

    # -- prefetch lifecycle spans ---------------------------------------

    def new_prefetch_trace(self, line_addr: int, now: int) -> Optional[PrefetchTrace]:
        """Open a lifecycle span for one prefetched-line instance.

        Returns None once ``max_prefetches`` spans exist (the instance is
        still fully counted in the stats; only its span is dropped).
        """
        if len(self.prefetches) >= self.max_prefetches:
            self.dropped_prefetches += 1
            return None
        trace = PrefetchTrace(line_addr=line_addr)
        trace.mark("issue", now)
        self.prefetches.append(trace)
        return trace

    # -- results --------------------------------------------------------

    def traces(self) -> List[RequestTrace]:
        """All recorded traces, in arrival order."""
        return list(self.requests.values())

    def completed_traces(self) -> List[RequestTrace]:
        return [t for t in self.requests.values() if t.completed]
