"""Telemetry capture persistence and Chrome trace-event export.

Two output formats:

* **capture JSONL** — the raw recording: a header line (version, run
  metadata, final metrics snapshot) followed by one record per request
  trace, DRAM/frame command (same short field codes as the
  :mod:`repro.check.trace` files), queue sample and profiler site.
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}``, loadable in
  Perfetto / ``chrome://tracing``: one process per channel/DIMM with a
  thread per bank (command and burst spans), one process per channel's
  link pair, and a "requests" process with per-core async lifecycle spans
  plus instant events for scheduling stalls.

:func:`validate_chrome_trace` is the schema check CI runs on exported
traces (required keys, known phases, monotonic timestamps, balanced async
begin/end pairs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.check.trace import CheckEvent, event_to_record, record_to_event
from repro.telemetry.registry import registry_from_stats
from repro.telemetry.spans import PrefetchTrace, RequestTrace, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimulationResult
    from repro.timeline.records import TimelineResult

CAPTURE_VERSION = 1
CAPTURE_FORMAT = "repro-telemetry"

#: Chrome trace-event phases this exporter emits ("C" = counter tracks
#: from the windowed timeline).
_EMITTED_PHASES = {"M", "X", "i", "b", "e", "n", "C"}

#: pid layout: fixed bases keep ids deterministic and human-guessable.
_PID_REQUESTS = 1
_PID_DIMM_BASE = 100
_PID_LINKS_BASE = 2000
_PID_PROFILER = 3000
_PID_TIMELINE = 4000


@dataclass
class TelemetryCapture:
    """Everything recorded about one traced run."""

    meta: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    requests: List[RequestTrace] = field(default_factory=list)
    prefetches: List[PrefetchTrace] = field(default_factory=list)
    commands: List[CheckEvent] = field(default_factory=list)
    samples: List[Dict[str, object]] = field(default_factory=list)
    profile: List[Dict[str, object]] = field(default_factory=list)
    #: Encoded WindowRecord dicts from a timeline-enabled run.
    timeline: List[Dict[str, object]] = field(default_factory=list)


def run_meta(result: "SimulationResult") -> Dict[str, object]:
    """Run metadata the exporters need (geometry, timing, workload)."""
    from repro.dram.timing import TimingPs

    memory = result.config.memory
    timing = TimingPs.from_config(
        memory.timings, memory.dram_clock_ps, memory.burst_clocks,
        tfaw_ns=memory.tFAW_ns,
    )
    return {
        "kind": memory.kind.value,
        "device": memory.device,
        "physical_channels": memory.physical_channels,
        "dimms_per_channel": memory.dimms_per_channel,
        "ranks_per_dimm": memory.ranks_per_dimm,
        "banks_per_dimm": memory.banks_per_dimm,
        "data_rate_mts": memory.data_rate_mts,
        "frame_ps": memory.frame_ps,
        "clock_ps": memory.dram_clock_ps,
        "tRCD_ps": timing.tRCD,
        "tCL_ps": timing.tCL,
        "tWL_ps": timing.tWL,
        "burst_ps": timing.burst,
        "prefetch_enabled": memory.prefetch.enabled,
        "region_cachelines": memory.prefetch.region_cachelines,
        "programs": list(result.programs),
        "instructions_per_core": result.config.instructions_per_core,
        "seed": result.config.seed,
        "elapsed_ps": result.elapsed_ps,
        "events_fired": result.events_fired,
    }


def build_capture(
    result: "SimulationResult",
    tracer: Tracer,
    check_events: Optional[List[CheckEvent]] = None,
    samples: Optional[List[Dict[str, object]]] = None,
    profile: Optional[List[Dict[str, object]]] = None,
) -> TelemetryCapture:
    """Assemble a capture from a finished traced run.

    ``check_events`` is the journalled command stream
    (``controller.collect_check_events()``); tracing enables journalling
    automatically, so it is available on every traced run.
    """
    from repro.serialize import encode_value

    metrics = registry_from_stats(result.mem).snapshot()
    metrics.update(tracer.registry.snapshot())
    meta = run_meta(result)
    meta["traced_requests"] = len(tracer.requests)
    meta["dropped_requests"] = tracer.dropped
    meta["traced_prefetches"] = len(tracer.prefetches)
    meta["dropped_prefetches"] = tracer.dropped_prefetches
    timeline: List[Dict[str, object]] = []
    if result.timeline is not None:
        meta["timeline_window_ps"] = result.timeline.window_ps
        timeline = [encode_value(w) for w in result.timeline.windows]
    return TelemetryCapture(
        meta=meta,
        metrics=metrics,
        requests=tracer.traces(),
        prefetches=list(tracer.prefetches),
        commands=sorted(check_events or [], key=lambda e: e.time_ps),
        samples=list(samples or []),
        profile=list(profile or []),
        timeline=timeline,
    )


# ----------------------------------------------------------------------
# Capture JSONL persistence
# ----------------------------------------------------------------------


def save_capture(path: Union[str, Path], capture: TelemetryCapture) -> int:
    """Write a capture as self-describing JSONL; returns records written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "version": CAPTURE_VERSION,
            "format": CAPTURE_FORMAT,
            "meta": capture.meta,
            "metrics": capture.metrics,
        }
        handle.write(json.dumps(header) + "\n")
        for trace in capture.requests:
            handle.write(json.dumps(trace.to_record()) + "\n")
            count += 1
        for pf_trace in capture.prefetches:
            handle.write(json.dumps(pf_trace.to_record()) + "\n")
            count += 1
        for event in capture.commands:
            record: Dict[str, object] = {"type": "cmd"}
            record.update(event_to_record(event))
            handle.write(json.dumps(record) + "\n")
            count += 1
        for sample in capture.samples:
            handle.write(json.dumps({"type": "sample", **sample}) + "\n")
            count += 1
        for site in capture.profile:
            handle.write(json.dumps({"type": "profile", **site}) + "\n")
            count += 1
        for window in capture.timeline:
            handle.write(json.dumps({"type": "window", **window}) + "\n")
            count += 1
    return count


def load_capture(path: Union[str, Path]) -> TelemetryCapture:
    """Load a capture written by :func:`save_capture`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != CAPTURE_FORMAT:
            raise ValueError(f"{path}: not a telemetry capture")
        if header.get("version") != CAPTURE_VERSION:
            raise ValueError(
                f"{path}: unsupported capture version {header.get('version')!r}"
            )
        capture = TelemetryCapture(
            meta=header.get("meta", {}), metrics=header.get("metrics", {})
        )
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            try:
                if kind == "req":
                    capture.requests.append(RequestTrace.from_record(record))
                elif kind == "pf":
                    capture.prefetches.append(PrefetchTrace.from_record(record))
                elif kind == "cmd":
                    capture.commands.append(record_to_event(record))
                elif kind == "sample":
                    capture.samples.append(record)
                elif kind == "profile":
                    capture.profile.append(record)
                elif kind == "window":
                    capture.timeline.append(record)
                else:
                    raise ValueError(f"unknown record type {kind!r}")
            except (TypeError, ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    capture.commands.sort(key=lambda e: e.time_ps)
    return capture


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def _us(time_ps: int) -> float:
    """Picoseconds -> the trace-event microsecond time base."""
    return time_ps / 1e6


def _meta_event(pid: int, tid: Optional[int], name: str, label: str) -> Dict[str, object]:
    event: Dict[str, object] = {
        "ph": "M", "name": name, "pid": pid, "tid": tid if tid is not None else 0,
        "ts": 0, "args": {"name": label},
    }
    return event


def chrome_trace(capture: TelemetryCapture) -> Dict[str, object]:
    """Render a capture as a Chrome trace-event document."""
    meta = capture.meta
    dimms = int(meta.get("dimms_per_channel", 1)) or 1
    banks_per_dimm = int(meta.get("banks_per_dimm", 4)) or 4
    tRCD = int(meta.get("tRCD_ps", 0))
    tCL = int(meta.get("tCL_ps", 0))
    tWL = int(meta.get("tWL_ps", 0))
    burst = int(meta.get("burst_ps", 0))
    frame_ps = int(meta.get("frame_ps", 0))

    events: List[Dict[str, object]] = []
    named_pids: Dict[int, str] = {}
    named_tids: Dict[tuple, str] = {}

    def ensure_process(pid: int, label: str) -> None:
        if pid not in named_pids:
            named_pids[pid] = label

    def ensure_thread(pid: int, tid: int, label: str) -> None:
        if (pid, tid) not in named_tids:
            named_tids[(pid, tid)] = label

    # -- request lifecycle spans (async events, one track per core) -----
    ensure_process(_PID_REQUESTS, "requests")
    for trace in capture.requests:
        arrival = trace.phase_time("arrival")
        complete = trace.phase_time("complete")
        if arrival is None or complete is None:
            continue
        tid = max(0, trace.core_id)
        ensure_thread(_PID_REQUESTS, tid, f"core{tid}")
        where = (
            f"ch{trace.channel}.d{trace.dimm}.b{trace.bank}"
            if trace.channel >= 0 else "unmapped"
        )
        args = {
            "line_addr": trace.line_addr,
            "where": where,
            "amb_hit": trace.amb_hit,
            "row_hit": trace.row_hit,
            "phases_ps": {name: t for name, t in trace.phases},
        }
        ident = f"0x{trace.req_id:x}"
        common = {"cat": "request", "id": ident, "pid": _PID_REQUESTS, "tid": tid}
        events.append({
            "ph": "b", "name": trace.kind, "ts": _us(arrival), "args": args,
            **common,
        })
        for phase, time_ps in trace.phases:
            if phase in ("arrival", "complete"):
                continue
            events.append({
                "ph": "n", "name": phase, "ts": _us(time_ps), **common,
            })
        events.append({
            "ph": "e", "name": trace.kind, "ts": _us(complete), **common,
        })
        queue_delay = trace.queue_delay_ps
        if queue_delay:
            issue = trace.phase_time("issue")
            assert issue is not None
            events.append({
                "ph": "i", "s": "t", "name": "scheduling stall",
                "cat": "stall", "pid": _PID_REQUESTS, "tid": tid,
                "ts": _us(issue),
                "args": {"queue_delay_ns": queue_delay / 1000.0},
            })

    # -- per-bank command/burst spans and link activity -----------------
    for event in capture.commands:
        if event.is_dram_command:
            pid = _PID_DIMM_BASE + event.channel * dimms + max(0, event.dimm)
            ensure_process(pid, f"ch{event.channel}.dimm{event.dimm}")
            tid = max(0, event.rank) * banks_per_dimm + max(0, event.bank)
            ensure_thread(pid, tid, f"rank{event.rank}.bank{event.bank}")
            common = {"cat": "dram", "pid": pid, "tid": tid}
            args = {"row": event.row}
            if event.kind == "ACT":
                events.append({
                    "ph": "X", "name": "ACT", "ts": _us(event.time_ps),
                    "dur": _us(tRCD), "args": args, **common,
                })
            elif event.kind == "RD":
                events.append({
                    "ph": "X", "name": "RD burst",
                    "ts": _us(event.time_ps + tCL), "dur": _us(burst),
                    "args": args, **common,
                })
            elif event.kind == "WR":
                events.append({
                    "ph": "X", "name": "WR burst",
                    "ts": _us(event.time_ps + tWL), "dur": _us(burst),
                    "args": args, **common,
                })
            else:  # PRE
                events.append({
                    "ph": "i", "s": "t", "name": "PRE",
                    "ts": _us(event.time_ps), "args": args, **common,
                })
        else:
            pid = _PID_LINKS_BASE + event.channel
            ensure_process(pid, f"ch{event.channel}.links")
            tid = 0 if event.kind == "NB_LINE" else 1
            ensure_thread(pid, tid, "north" if tid == 0 else "south")
            frames = event.frames if event.kind == "NB_LINE" else 1
            events.append({
                "ph": "X", "name": event.kind, "ts": _us(event.time_ps),
                "dur": _us(frames * frame_ps), "cat": "link",
                "pid": pid, "tid": tid,
                "args": {"frames": frames},
            })

    # -- event-loop profiler attribution track --------------------------
    # Wall-time stacks from the EventLoopProfiler, rendered as one
    # synthetic thread per subsystem bucket with stacks packed end to end
    # (timestamps here are accumulated wall microseconds, not model time).
    stack_records = [r for r in capture.profile if "stack" in r]
    if stack_records:
        ensure_process(_PID_PROFILER, "event-loop profiler (wall time)")
        subsystem_tids: Dict[str, int] = {}
        offsets: Dict[int, float] = {}
        for record in stack_records:
            stack = [str(frame) for frame in record.get("stack", [])]
            if not stack:
                continue
            subsystem = str(record.get("subsystem", "other"))
            tid = subsystem_tids.setdefault(subsystem, len(subsystem_tids))
            ensure_thread(_PID_PROFILER, tid, subsystem)
            wall_us = float(record.get("wall_s", 0.0)) * 1e6
            start = offsets.get(tid, 0.0)
            offsets[tid] = start + wall_us
            events.append({
                "ph": "X", "name": stack[-1], "cat": "profile",
                "pid": _PID_PROFILER, "tid": tid,
                "ts": start, "dur": wall_us,
                "args": {
                    "stack": ";".join(stack),
                    "events": int(record.get("events", 0)),
                },
            })

    # -- timeline counter tracks (windowed bandwidth / power / queue) ---
    if capture.timeline:
        ensure_process(_PID_TIMELINE, "timeline (windowed counters)")
        for window in capture.timeline:
            start_ps = int(window.get("start_ps", 0))
            duration = int(window.get("end_ps", 0)) - start_ps
            if duration <= 0:
                continue
            traffic = int(window.get("bytes_read", 0)) + int(
                window.get("bytes_written", 0)
            )
            dynamic_nj = (
                float(window.get("energy_act_nj", 0.0))
                + float(window.get("energy_rd_nj", 0.0))
                + float(window.get("energy_wr_nj", 0.0))
                + float(window.get("energy_refresh_nj", 0.0))
            )
            background_nj = float(window.get("energy_background_nj", 0.0))
            duration_ns = duration / 1000.0
            common = {"ph": "C", "pid": _PID_TIMELINE, "tid": 0,
                      "cat": "timeline", "ts": _us(start_ps)}
            events.append({
                "name": "bandwidth",
                "args": {"GB/s": traffic / duration_ns}, **common,
            })
            events.append({
                "name": "queue depth",
                "args": {"requests": int(window.get("queue_depth", 0))},
                **common,
            })
            events.append({
                "name": "power",
                "args": {"dynamic W": dynamic_nj / duration_ns,
                         "background W": background_nj / duration_ns},
                **common,
            })
            events.append({
                "name": "power-down",
                "args": {
                    "fraction": int(window.get("powerdown_ps", 0)) / duration
                }, **common,
            })
            # Lifecycle taxonomy track — only when the window carries the
            # pf_* fields (they are elided from the encoding at their
            # defaults, i.e. whenever lifecycle tracking was off).
            if any(key in window for key in (
                "pf_issued", "pf_used", "pf_evicted_unused",
                "pf_late_unused", "pf_invalidated",
            )):
                events.append({
                    "name": "prefetch lifecycle",
                    "args": {
                        "issued": int(window.get("pf_issued", 0)),
                        "used": int(window.get("pf_used", 0)),
                        "late": int(window.get("pf_late_unused", 0)),
                        "evicted": int(window.get("pf_evicted_unused", 0)),
                        "invalidated": int(window.get("pf_invalidated", 0)),
                    }, **common,
                })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))  # type: ignore[index]
    metadata: List[Dict[str, object]] = []
    for pid in sorted(named_pids):
        metadata.append(_meta_event(pid, None, "process_name", named_pids[pid]))
    for (pid, tid) in sorted(named_tids):
        metadata.append(
            _meta_event(pid, tid, "thread_name", named_tids[(pid, tid)])
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro.telemetry",
            "format_version": CAPTURE_VERSION,
            "meta": meta,
        },
    }


def write_chrome_trace(path: Union[str, Path], capture: TelemetryCapture) -> Dict[str, object]:
    """Export and write the Chrome trace; returns the document written."""
    doc = chrome_trace(capture)
    Path(path).write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return doc


def validate_chrome_trace(doc: object) -> List[str]:
    """Schema-check an exported Chrome trace document.

    Returns a list of problems (empty = valid): required keys present,
    known phases, non-negative and monotonically non-decreasing
    timestamps, non-negative durations, balanced async begin/end pairs.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        return ["traceEvents is empty"]
    last_ts: Optional[float] = None
    open_async: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("ph", "pid", "tid", "ts", "name"):
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        ph = event.get("ph")
        if ph not in _EMITTED_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad timestamp {ts!r}")
            continue
        if ph != "M":
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"{where}: timestamp {ts} not monotonic (prev {last_ts})"
                )
            last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if ph in ("b", "e", "n"):
            if "id" not in event or "cat" not in event:
                problems.append(f"{where}: async event missing id/cat")
                continue
            key = (event["cat"], event["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif ph == "e":
                if open_async.get(key, 0) <= 0:
                    problems.append(f"{where}: async end without begin {key}")
                else:
                    open_async[key] -= 1
    dangling = sum(1 for count in open_async.values() if count > 0)
    if dangling:
        problems.append(f"{dangling} async span(s) never ended")
    return problems


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------


def summarize_capture(capture: TelemetryCapture, top_sites: int = 10) -> str:
    """Human-readable digest of a capture: phases, metrics, hot sites."""
    from repro.telemetry.registry import Histogram

    lines: List[str] = []
    meta = capture.meta
    lines.append(
        f"capture: {meta.get('kind', '?')}, "
        f"{meta.get('physical_channels', '?')} physical channels, "
        f"programs {meta.get('programs', [])}, "
        f"{len(capture.requests)} request traces, "
        f"{len(capture.commands)} command events"
    )
    if meta.get("dropped_requests"):
        lines.append(f"  (bounded recording: {meta['dropped_requests']} requests dropped)")

    completed = [t for t in capture.requests if t.completed]
    if completed:
        by_kind: Dict[str, int] = {}
        amb_hits = 0
        hist = Histogram("latency", "")
        queue = Histogram("queue", "")
        for trace in completed:
            by_kind[trace.kind] = by_kind.get(trace.kind, 0) + 1
            if trace.amb_hit:
                amb_hits += 1
            latency = trace.latency_ps
            if latency is not None:
                hist.observe(latency)
            delay = trace.queue_delay_ps
            if delay is not None:
                queue.observe(delay)
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        lines.append(f"completed: {len(completed)} ({kinds}), {amb_hits} AMB hits")
        lines.append(
            f"latency ns: mean {hist.mean / 1000:.1f}, "
            f"p50 {hist.percentile(50) / 1000:.1f}, "
            f"p95 {hist.percentile(95) / 1000:.1f}, "
            f"p99 {hist.percentile(99) / 1000:.1f}"
        )
        lines.append(
            f"queue delay ns: mean {queue.mean / 1000:.1f}, "
            f"p95 {queue.percentile(95) / 1000:.1f}"
        )

    if capture.prefetches:
        outcomes: Dict[str, int] = {}
        fill_sum = 0
        filled = 0
        for pf in capture.prefetches:
            outcomes[pf.outcome or "open"] = outcomes.get(pf.outcome or "open", 0) + 1
            fill_ps = pf.fill_latency_ps
            if fill_ps is not None:
                fill_sum += fill_ps
                filled += 1
        breakdown = ", ".join(
            f"{name}={count}" for name, count in sorted(outcomes.items())
        )
        line = f"prefetch traces: {len(capture.prefetches)} ({breakdown})"
        if filled:
            line += f", mean fill latency {fill_sum / filled / 1000:.1f} ns"
        lines.append(line)

    if capture.samples:
        depths = [int(s.get("queued_requests", 0)) for s in capture.samples]
        lines.append(
            f"queue samples: {len(depths)}, mean depth "
            f"{sum(depths) / len(depths):.2f}, peak {max(depths)}"
        )

    if capture.metrics:
        lines.append("metrics:")
        for name in sorted(capture.metrics):
            snap = capture.metrics[name]
            if snap.get("type") == "histogram":
                lines.append(
                    f"  {name}: count={snap.get('count')} mean={snap.get('mean'):.0f} "
                    f"p95={snap.get('p95'):.0f}"
                )
            else:
                lines.append(f"  {name}: {snap.get('value')}")

    site_records = [s for s in capture.profile if "site" in s]
    if site_records:
        subsystems: Dict[str, float] = {}
        for record in site_records:
            name = str(record.get("subsystem", "other"))
            subsystems[name] = subsystems.get(name, 0.0) + float(
                record.get("wall_s", 0.0)
            )
        total_wall = sum(subsystems.values())
        if total_wall > 0:
            shares = ", ".join(
                f"{name} {wall / total_wall:.0%}"
                for name, wall in sorted(
                    subsystems.items(), key=lambda item: -item[1]
                )
            )
            lines.append(f"subsystem wall time: {shares}")
        lines.append(f"event-loop profile (top {top_sites} by wall time):")
        ranked = sorted(
            site_records,
            key=lambda s: (-float(s.get("wall_s", 0.0)), str(s.get("site", ""))),
        )
        for site in ranked[:top_sites]:
            lines.append(
                f"  {site.get('site', '?'):<60} "
                f"{int(site.get('events', 0)):>9} events "
                f"{float(site.get('wall_s', 0.0)) * 1000:>8.1f} ms"
            )
    return "\n".join(lines)
