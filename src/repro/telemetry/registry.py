"""Named, self-describing metrics: counters, gauges and log-scaled histograms.

The raw simulator counters live in bare dataclass ints
(:class:`repro.stats.collector.MemSystemStats`) because the hot path must
stay allocation-free.  This module provides the *presentation* layer on
top: every quantity gets a name, a help string and a typed snapshot, so
exporters (JSON, JSONL streams, the trace CLI) never need to know which
dataclass field a number came from.  :func:`registry_from_stats` adapts a
finished ``MemSystemStats`` into a registry without changing its API.
"""

from __future__ import annotations

import json
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

if TYPE_CHECKING:
    from repro.stats.collector import MemSystemStats


class Counter:
    """A monotonically increasing integer metric."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (counts from parallel workers sum)."""
        self.inc(other.value)

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A point-in-time value that may move in either direction."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: last write wins.

        A gauge is a point-in-time snapshot, so there is no universally
        correct cross-worker combination; aggregate quantities (mean
        latency, total bandwidth) should be re-derived from the merged
        *counters* instead of averaged gauges.
        """
        self.value = other.value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Log-scaled histogram of non-negative integers (latencies in ps).

    Buckets are powers of two: bucket ``i`` holds values in
    ``(2**(i-1), 2**i]`` (bucket 0 holds exactly 0).  That keeps memory
    bounded (~64 buckets for any picosecond quantity) at ~2x resolution,
    which is plenty for latency-distribution shape and percentiles.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        """Record one sample (negative values are a caller bug)."""
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative sample {value}")
        index = int(value).bit_length()
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in, bucket by bucket.

        Exact: the merged histogram equals one built by observing both
        sample streams, so per-worker latency histograms from parallel
        runs aggregate losslessly (percentiles keep bucket resolution).
        """
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """(bucket upper bound, count) pairs in ascending order."""
        return [
            (0 if i == 0 else 2 ** i, self._buckets[i])
            for i in sorted(self._buckets)
        ]

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0 < p <= 100), bucket-resolution.

        Returns the upper bound of the bucket containing the p-th sample,
        clamped to the observed maximum — an over-estimate by at most 2x.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for upper, count in self.buckets():
            seen += count
            if seen >= rank:
                assert self.max is not None
                return float(min(upper, self.max))
        assert self.max is not None
        return float(self.max)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": self.buckets(),
        }


#: The concrete metric classes ``_get_or_create`` can hand back.
_MetricT = TypeVar("_MetricT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """An ordered collection of named metrics with one snapshot surface.

    ``counter()`` / ``gauge()`` / ``histogram()`` get-or-create, so model
    code can call them repeatedly without bookkeeping; asking for an
    existing name with a different metric type is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(
        self, cls: Type[_MetricT], name: str, help: str
    ) -> _MetricT:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Registered metric names, in registration order."""
        return list(self._metrics)

    def get(self, name: str) -> Any:
        return self._metrics.get(name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, metric by metric.

        Metrics missing here are created with the other registry's help
        text; same-name metrics must agree on type (counters sum,
        histograms merge bucket-wise, gauges take the incoming value).
        The parallel experiment runner uses this to aggregate per-worker
        metrics that were previously dropped.
        """
        for name, metric in other._metrics.items():
            mine = self._get_or_create(type(metric), name, metric.help)
            mine.merge(metric)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name -> self-describing value dict, in registration order."""
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_records(self) -> List[Dict[str, object]]:
        """One flat dict per metric, for JSONL streaming."""
        records = []
        for name, snap in self.snapshot().items():
            record: Dict[str, object] = {"name": name}
            record.update(snap)
            records.append(record)
        return records


def _dynamic_energy_units(stats: MemSystemStats) -> float:
    """Per-command dynamic energy of a finished run (fig13's basis)."""
    from repro.power.energy import CommandEnergyModel

    return CommandEnergyModel().energy_of(stats)


def registry_from_stats(
    stats: MemSystemStats, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Adapt a :class:`~repro.stats.collector.MemSystemStats` into metrics.

    Every bare counter becomes a named :class:`Counter`; the derived
    paper quantities (latency, bandwidth, coverage, efficiency) become
    gauges; captured per-request latencies (``enable_latency_capture``)
    become a histogram.  The stats object itself is left untouched.
    """
    from repro.stats import metrics as derived

    reg = registry if registry is not None else MetricsRegistry()

    counters = (
        ("mem.demand_reads", "completed demand reads", stats.demand_reads),
        ("mem.sw_prefetch_reads", "completed software-prefetch reads",
         stats.sw_prefetch_reads),
        ("mem.writes", "retired writes", stats.writes),
        ("mem.amb_hits", "reads served from an AMB cache", stats.amb_hits),
        ("mem.prefetched_lines", "lines written into AMB caches",
         stats.prefetched_lines),
        ("mem.read_latency_sum_ps", "latency sum of all reads",
         stats.read_latency_sum_ps),
        ("mem.demand_latency_sum_ps", "latency sum of demand reads",
         stats.demand_latency_sum_ps),
        ("mem.queue_delay_sum_ps", "schedulable-to-issue delay sum",
         stats.queue_delay_sum_ps),
        ("mem.bytes_read", "bytes crossing the channel toward the CPU",
         stats.bytes_read),
        ("mem.bytes_written", "write bytes crossing the channel",
         stats.bytes_written),
        ("mem.activates", "ACT/PRE pairs at the DRAM devices", stats.activates),
        ("mem.column_accesses", "RD/WR column commands", stats.column_accesses),
        ("mem.column_reads", "RD share of the column commands",
         stats.column_reads),
        ("mem.column_writes", "WR share of the column commands",
         stats.column_writes),
        ("mem.refreshes", "all-bank refreshes at the DRAM devices",
         stats.refreshes),
        ("mem.row_hits", "open-page row-buffer hits", stats.row_hits),
        ("mem.row_misses", "open-page row-buffer misses", stats.row_misses),
        ("mem.faw_stalls", "ACTs delayed by the tFAW window",
         stats.faw_stalls),
        ("mem.faw_stall_ps", "total ACT delay from the tFAW window",
         stats.faw_stall_ps),
        ("mem.idle_ps", "whole-subsystem idle time", stats.idle_ps),
        ("mem.powerdown_ps", "idle time past the power-down threshold",
         stats.powerdown_ps),
        ("mem.idle_gaps", "entries into the all-idle state", stats.idle_gaps),
        ("mem.faults_injected", "corrupted transfer attempts on the links",
         stats.faults_injected),
        ("mem.faults_corrupted", "transfers that saw >= 1 corruption",
         stats.faults_corrupted),
        ("mem.faults_retried_ok", "corrupted transfers recovered by replay",
         stats.faults_retried_ok),
        ("mem.faults_dropped", "transfers that exhausted the retry budget",
         stats.faults_dropped),
        ("mem.fault_retry_latency_ps", "link latency added by replays",
         stats.fault_retry_latency_ps),
        ("mem.fault_degraded_entries", "channels that entered degraded mode",
         stats.fault_degraded_entries),
        ("mem.amb_parity_errors", "AMB-cache hits voided by parity",
         stats.amb_parity_errors),
        ("mem.pf_issued", "prefetched-line instances booked by group fetches",
         stats.pf_issued),
        ("mem.pf_used", "prefetch instances hit while resident",
         stats.pf_used),
        ("mem.pf_evicted_unused", "prefetch instances replaced before any hit",
         stats.pf_evicted_unused),
        ("mem.pf_late_unused", "prefetch instances whose demand merged "
         "with the in-flight fill", stats.pf_late_unused),
        ("mem.pf_invalidated", "prefetch instances dropped by writes/parity",
         stats.pf_invalidated),
        ("mem.pf_resident_at_end", "prefetch instances still open at finalize",
         stats.pf_resident_at_end),
        ("mem.pf_hits", "completed reads served from a prefetch buffer",
         stats.pf_hits),
        ("mem.pf_table_lookups", "prefetch tag-store probes",
         stats.pf_table_lookups),
        ("mem.pf_table_hits", "prefetch tag-store hits incl. fill merges",
         stats.pf_table_hits),
        ("mem.pf_table_inserts", "lines installed into prefetch tag stores",
         stats.pf_table_inserts),
        ("mem.pf_table_evictions", "lines replaced out of prefetch tag stores",
         stats.pf_table_evictions),
        ("mem.pf_table_invalidations", "tag-store lines dropped by "
         "writes/parity", stats.pf_table_invalidations),
    )
    for name, help, value in counters:
        reg.counter(name, help).inc(value)

    gauges = (
        ("mem.elapsed_ps", "active window length", float(stats.elapsed_ps)),
        ("mem.avg_read_latency_ns", "mean demand-read latency",
         derived.average_read_latency_ns(stats)),
        ("mem.avg_queue_delay_ns", "mean schedulable-to-issue delay",
         derived.average_queue_delay_ns(stats)),
        ("mem.utilized_bandwidth_gbs", "data moved over the channels",
         derived.utilized_bandwidth_gbs(stats)),
        ("mem.prefetch_coverage", "#prefetch_hit / #read",
         derived.prefetch_coverage(stats)),
        ("mem.prefetch_efficiency", "#prefetch_hit / #prefetch",
         derived.prefetch_efficiency(stats)),
        ("mem.prefetch_accuracy", "used prefetches / issued prefetches",
         derived.prefetch_accuracy(stats)),
        ("mem.prefetch_pollution", "evicted-unused prefetches / issued",
         derived.prefetch_pollution(stats)),
        ("mem.prefetch_timeliness", "timely useful prefetches / useful",
         derived.prefetch_timeliness(stats)),
        ("mem.lifecycle_coverage", "pf_hits / #read (lifecycle path)",
         derived.lifecycle_coverage(stats)),
        ("mem.dynamic_energy_units", "per-command dynamic energy",
         _dynamic_energy_units(stats)),
        ("mem.powerdown_residency", "power-down share of the idle time",
         stats.powerdown_ps / stats.idle_ps if stats.idle_ps else 0.0),
    )
    for name, help, value in gauges:
        reg.gauge(name, help).set(value)

    for name, busy_ps in sorted(stats.per_channel_busy_ps.items()):
        reg.gauge(
            f"mem.busy_ps.{name}", "bus/link occupancy in picoseconds"
        ).set(float(busy_ps))

    for core_id in sorted(stats.per_core_reads):
        entry = stats.per_core_reads[core_id]
        reads, latency_sum = entry[0], entry[1]
        queue_sum = entry[2] if len(entry) > 2 else 0
        prefix = f"mem.core{core_id}"
        reg.counter(f"{prefix}.demand_reads", "per-core demand reads").inc(reads)
        reg.counter(
            f"{prefix}.demand_latency_sum_ps", "per-core latency sum"
        ).inc(latency_sum)
        reg.counter(
            f"{prefix}.queue_delay_sum_ps", "per-core queue-delay sum"
        ).inc(queue_sum)

    if stats.demand_latency_samples:
        hist = reg.histogram(
            "mem.demand_latency_ps", "per-request demand-read latency"
        )
        for sample in stats.demand_latency_samples:
            hist.observe(sample)
    return reg


def merge_records(registries: Iterable[MetricsRegistry]) -> List[Dict[str, object]]:
    """Flatten several registries into one JSONL-ready record list."""
    records: List[Dict[str, object]] = []
    for registry in registries:
        records.extend(registry.to_records())
    return records
