"""Observability layer: request tracing, metrics registry, exporters.

Quickstart::

    from repro.telemetry import Tracer, build_capture, write_chrome_trace
    from repro.system import System

    tracer = Tracer()
    machine = System(config, programs, tracer=tracer)
    result = machine.run()
    capture = build_capture(
        result, tracer, check_events=machine.controller.collect_check_events()
    )
    write_chrome_trace("trace.json", capture)   # open in Perfetto

See ``docs/OBSERVABILITY.md`` and ``python -m repro.trace --help``.
"""

from repro.telemetry.export import (
    TelemetryCapture,
    build_capture,
    chrome_trace,
    load_capture,
    save_capture,
    summarize_capture,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_stats,
)
from repro.telemetry.spans import (
    PF_OUTCOMES,
    PF_PHASES,
    PHASES,
    PrefetchTrace,
    RequestTrace,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PF_OUTCOMES",
    "PF_PHASES",
    "PHASES",
    "PrefetchTrace",
    "RequestTrace",
    "TelemetryCapture",
    "Tracer",
    "build_capture",
    "chrome_trace",
    "load_capture",
    "registry_from_stats",
    "save_capture",
    "summarize_capture",
    "validate_chrome_trace",
    "write_chrome_trace",
]
