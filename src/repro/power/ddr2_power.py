"""DDR2 device power estimation, after the Micron system-power calculator.

The paper does not run the full calculator inside the simulator; it uses it
once to calibrate the ratio of energy per activate/precharge *pair* to
energy per column access — "roughly 4:1" for DDR2-667 at 70 % bandwidth
utilisation under close-page — and then scales by the simulator's ACT/PRE
and column-access counts.  We do both: :class:`MicronPowerCalculator`
re-derives the ratio from typical DDR2-667 IDD datasheet values, and
:class:`PowerModel` applies a ratio to operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.collector import MemSystemStats


@dataclass(frozen=True)
class MicronPowerCalculator:
    """Energy per DRAM operation from datasheet IDD values.

    Default values are typical of a 1 Gb DDR2-667 x8 device (Micron
    MT47H128M8 class).  Currents in mA, voltage in V, times in ns.
    """

    vdd: float = 1.8
    idd0: float = 85.0  # active-precharge current over one tRC
    idd3n: float = 45.0  # active standby (baseline during tRC)
    idd4r: float = 180.0  # burst read current
    idd4w: float = 185.0  # burst write current
    idd2n: float = 40.0  # precharge standby (baseline during bursts)
    idd2p: float = 7.0  # precharge power-down (CKE low)
    idd5: float = 215.0  # burst auto-refresh current over tRFC
    t_rc_ns: float = 54.0
    t_rfc_ns: float = 127.5  # refresh cycle time, 1 Gb device
    burst_ns: float = 12.0  # 8 beats at DDR2-667
    chips_per_rank: int = 8
    #: Share of the burst current spent in the output drivers and on-die
    #: termination.  The paper's accounting excludes "terminal power", so
    #: only the remaining array-access share counts as column energy.
    io_exclusion_fraction: float = 0.65

    def act_pre_energy_nj(self) -> float:
        """Energy of one activate + precharge pair for a whole rank.

        The calculator charges (IDD0 - IDD3N) x VDD over tRC per chip.
        """
        per_chip = (self.idd0 - self.idd3n) * self.vdd * self.t_rc_ns / 1000.0
        return per_chip * self.chips_per_rank

    def column_energy_nj(self, is_write: bool = False) -> float:
        """Array energy of one cacheline burst (read by default) for a rank,
        with the I/O / termination share excluded per the paper."""
        idd4 = self.idd4w if is_write else self.idd4r
        array_share = 1.0 - self.io_exclusion_fraction
        per_chip = (
            (idd4 - self.idd3n) * array_share * self.vdd * self.burst_ns / 1000.0
        )
        return per_chip * self.chips_per_rank

    def act_to_column_ratio(self) -> float:
        """The paper's calibrated ratio (roughly 4:1 for these defaults)."""
        return self.act_pre_energy_nj() / self.column_energy_nj()

    def refresh_energy_nj(self) -> float:
        """Energy of one all-bank auto-refresh for a whole rank.

        (IDD5 - IDD2N) x VDD over tRFC per chip; the precharge-standby
        baseline is subtracted because background power is accounted
        separately (see :meth:`standby_power_w`).
        """
        per_chip = (self.idd5 - self.idd2n) * self.vdd * self.t_rfc_ns / 1000.0
        return per_chip * self.chips_per_rank

    def standby_power_w(self) -> float:
        """Background power of one idle (precharge standby, CKE high) rank."""
        return self.idd2n * self.vdd * self.chips_per_rank / 1000.0

    def powerdown_power_w(self) -> float:
        """Background power of one rank in precharge power-down (CKE low)."""
        return self.idd2p * self.vdd * self.chips_per_rank / 1000.0


@dataclass(frozen=True)
class PowerModel:
    """Relative dynamic DRAM power from operation counts.

    ``act_pre_weight`` is the energy of one activate/precharge pair in
    units of one column access (the paper's 4:1).
    """

    act_pre_weight: float = 4.0
    static_fraction: float = 0.175  # of total power, per the calculator

    def dynamic_energy_units(self, activates: int, column_accesses: int) -> float:
        """Total dynamic energy in column-access units."""
        if activates < 0 or column_accesses < 0:
            raise ValueError("operation counts must be non-negative")
        return self.act_pre_weight * activates + column_accesses

    def energy_of(self, stats: MemSystemStats) -> float:
        """Dynamic energy of one run, from its device-operation counters."""
        return self.dynamic_energy_units(stats.activates, stats.column_accesses)


def relative_dynamic_power(
    stats: MemSystemStats,
    baseline: MemSystemStats,
    model: PowerModel = PowerModel(),
) -> float:
    """Dynamic DRAM power of ``stats`` relative to ``baseline`` (Figure 13).

    Both runs execute the same instruction work, so the ratio of dynamic
    energies is the paper's normalised power-consumption metric.  Values
    below 1.0 are savings.
    """
    base_energy = model.energy_of(baseline)
    if base_energy <= 0:
        raise ValueError("baseline run performed no DRAM operations")
    return model.energy_of(stats) / base_energy
