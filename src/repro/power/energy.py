"""Per-command DRAM energy accounting.

:class:`~repro.power.ddr2_power.PowerModel` reduces a whole run to one
number (``4 x activates + column_accesses``); that is enough for Figure
13's end-of-run ratio but cannot say *when* the energy was spent or what
the background (standby / power-down) share is.  This module splits the
same accounting by command class:

* **dynamic** energy per ACT/PRE pair, column read, column write and
  refresh — in column-access *units* (:class:`CommandEnergyModel`, the
  paper's calibrated weights) or in datasheet nanojoules
  (:class:`EnergyAccountant`, via :class:`MicronPowerCalculator`);
* **background** energy from wall time split into awake standby and
  power-down residency, which the idle-gap tracker in the memory
  controller measures when the timeline is enabled.

Compatibility contract (pinned by tests): with the default weights,
:func:`relative_dynamic_power_from_commands` reproduces
:func:`~repro.power.ddr2_power.relative_dynamic_power` exactly on any
refresh-free run, because ``read_units == write_units == 1.0`` makes
``act_pre_units x ACT + RD + WR`` equal ``4 x ACT + column_accesses``.
Figure 13 is computed through this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.ddr2_power import MicronPowerCalculator
from repro.stats.collector import MemSystemStats


@dataclass(frozen=True)
class CommandEnergyModel:
    """Dynamic energy weights per command class, in column-access units.

    ``act_pre_units`` keeps the paper's calibrated 4:1; the read/write
    split is free (both are one column access in the paper's accounting);
    ``refresh_units`` is the Micron calculator's refresh energy divided by
    one column-read energy (the paper does not model refresh, so this
    weight only matters for refresh-enabled runs).
    """

    act_pre_units: float = 4.0
    read_units: float = 1.0
    write_units: float = 1.0
    refresh_units: float = 39.35

    @classmethod
    def from_calculator(cls, calc: MicronPowerCalculator) -> "CommandEnergyModel":
        """Derive weights from datasheet IDD values, in column-read units.

        Used by the non-DDR2 device presets: their weights come straight
        from their own calculator instead of the paper's DDR2 calibration
        (which rounds the ACT/PRE ratio to 4:1 — the paper's published
        number — where the calculator alone would give ~3.81).
        """
        col = calc.column_energy_nj(is_write=False)
        return cls(
            act_pre_units=calc.act_pre_energy_nj() / col,
            read_units=1.0,
            write_units=calc.column_energy_nj(is_write=True) / col,
            refresh_units=calc.refresh_energy_nj() / col,
        )

    def dynamic_energy_units(
        self,
        activates: int,
        column_reads: int,
        column_writes: int,
        refreshes: int = 0,
    ) -> float:
        """Total dynamic energy of a command mix, in column-access units."""
        counts = (activates, column_reads, column_writes, refreshes)
        if any(count < 0 for count in counts):
            raise ValueError("command counts must be non-negative")
        return (
            self.act_pre_units * activates
            + self.read_units * column_reads
            + self.write_units * column_writes
            + self.refresh_units * refreshes
        )

    def energy_of(self, stats: MemSystemStats) -> float:
        """Dynamic energy of one run from its per-command counters."""
        return self.dynamic_energy_units(
            stats.activates, stats.column_reads, stats.column_writes,
            stats.refreshes,
        )


def relative_dynamic_power_from_commands(
    stats: MemSystemStats,
    baseline: MemSystemStats,
    model: CommandEnergyModel = CommandEnergyModel(),
) -> float:
    """Figure 13's normalised dynamic power, from per-command counts.

    Identical to :func:`~repro.power.ddr2_power.relative_dynamic_power`
    for the default weights on refresh-free runs (the compatibility
    contract above), but built on the split ACT/RD/WR/refresh accounting
    so timeline windows and figures share one energy model.
    """
    base_energy = model.energy_of(baseline)
    if base_energy <= 0:
        raise ValueError("baseline run performed no DRAM operations")
    return model.energy_of(stats) / base_energy


@dataclass(frozen=True)
class EnergyBreakdown:
    """Nanojoules spent in one accounting interval, split by source."""

    act_nj: float = 0.0
    rd_nj: float = 0.0
    wr_nj: float = 0.0
    refresh_nj: float = 0.0
    background_nj: float = 0.0

    @property
    def dynamic_nj(self) -> float:
        return self.act_nj + self.rd_nj + self.wr_nj + self.refresh_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj


@dataclass(frozen=True)
class EnergyAccountant:
    """Datasheet-nanojoule accounting for command deltas plus wall time.

    ``ranks`` scales the background power: every rank in the system pays
    precharge-standby power while awake and power-down power during the
    measured power-down residency.  The residency comes from the memory
    controller's idle-gap tracker (whole-subsystem idle, so all ranks
    enter power-down together — the upper bound on the saving the paper's
    Section 5.5 argues for).
    """

    calculator: MicronPowerCalculator = MicronPowerCalculator()
    ranks: int = 1

    def interval_energy(
        self,
        activates: int,
        column_reads: int,
        column_writes: int,
        refreshes: int,
        interval_ps: int,
        powerdown_ps: int = 0,
    ) -> EnergyBreakdown:
        """Energy of one interval from its command deltas and residency."""
        if interval_ps < 0 or powerdown_ps < 0:
            raise ValueError("interval and residency must be non-negative")
        calc = self.calculator
        awake_ns = max(interval_ps - powerdown_ps, 0) / 1000.0
        down_ns = min(powerdown_ps, interval_ps) / 1000.0
        background = self.ranks * (
            calc.standby_power_w() * awake_ns
            + calc.powerdown_power_w() * down_ns
        )
        return EnergyBreakdown(
            act_nj=activates * calc.act_pre_energy_nj(),
            rd_nj=column_reads * calc.column_energy_nj(is_write=False),
            wr_nj=column_writes * calc.column_energy_nj(is_write=True),
            refresh_nj=refreshes * calc.refresh_energy_nj(),
            background_nj=background,
        )
