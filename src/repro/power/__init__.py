"""DRAM power estimation (Section 5.5)."""

from repro.power.ddr2_power import (
    MicronPowerCalculator,
    PowerModel,
    relative_dynamic_power,
)

__all__ = ["MicronPowerCalculator", "PowerModel", "relative_dynamic_power"]
