"""DRAM power estimation (Section 5.5)."""

from repro.power.ddr2_power import (
    MicronPowerCalculator,
    PowerModel,
    relative_dynamic_power,
)
from repro.power.energy import (
    CommandEnergyModel,
    EnergyAccountant,
    EnergyBreakdown,
    relative_dynamic_power_from_commands,
)

__all__ = [
    "MicronPowerCalculator",
    "PowerModel",
    "relative_dynamic_power",
    "CommandEnergyModel",
    "EnergyAccountant",
    "EnergyBreakdown",
    "relative_dynamic_power_from_commands",
]
