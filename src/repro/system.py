"""Top-level system: cores + shared L2 + memory controller, and the run loop.

:func:`run_system` is the main entry point of the library: it builds one
simulated machine from a :class:`~repro.config.SystemConfig` and a list of
program names (one per core), runs until the first core commits its target
instruction count (the paper's stopping rule), and returns a
:class:`SimulationResult` with per-core IPCs and the memory-system counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.spans import Tracer
    from repro.timeline.collector import TimelineCollector
from repro.controller.controller import MemoryController
from repro.cpu.core import Core, CoreStats
from repro.cpu.l2 import L2FillTable
from repro.cpu.mshr import Limiter
from repro.engine.simulator import Simulator
from repro.stats import metrics
from repro.stats.collector import MemSystemStats
from repro.timeline.records import TimelineResult
from repro.workloads.spec import make_trace

#: Shared L2 capacity in cachelines (4 MB / 64 B, Table 1); bounds how long
#: software-prefetched lines stay resident.
L2_CAPACITY_LINES = (4 * 1024 * 1024) // 64

#: Hard ceiling on fired events per run; a livelock fails loudly.
MAX_EVENTS_PER_RUN = 200_000_000


@dataclass
class SimulationResult:
    """Everything measured in one run."""

    config: SystemConfig
    programs: List[str]
    elapsed_ps: int
    core_instructions: List[int]
    core_ipcs: List[float]
    core_stats: List[CoreStats]
    mem: MemSystemStats
    l2_prefetch_hits: int = 0
    events_fired: int = 0
    warmup_time_ps: int = 0  # measurement window start (0 = no warm-up)
    #: Protocol-checker outcome: None when the run had check_protocol off,
    #: [] when checked and clean (a non-empty list never escapes — System.run
    #: raises ProtocolViolationError instead).
    protocol_violations: Optional[list] = None
    #: Windowed telemetry (repro.timeline); None unless the run's config
    #: had ``timeline.enabled`` — the timeline-off canonical JSON is thus
    #: unchanged and the bit-identity guarantee holds.
    timeline: Optional[TimelineResult] = None

    @property
    def ipc_by_program(self) -> Dict[str, float]:
        """Program name -> IPC (program names are unique within a mix)."""
        return dict(zip(self.programs, self.core_ipcs))

    @property
    def avg_read_latency_ns(self) -> float:
        return metrics.average_read_latency_ns(self.mem)

    @property
    def utilized_bandwidth_gbs(self) -> float:
        return metrics.utilized_bandwidth_gbs(self.mem)

    @property
    def prefetch_coverage(self) -> float:
        return metrics.prefetch_coverage(self.mem)

    @property
    def prefetch_efficiency(self) -> float:
        return metrics.prefetch_efficiency(self.mem)

    def smt_speedup(self, reference_ipcs: Dict[str, float]) -> float:
        """SMT speedup against per-program reference IPCs."""
        refs = [reference_ipcs[p] for p in self.programs]
        return metrics.smt_speedup(self.core_ipcs, refs)

    # -- serialisation (run cache, differential tests) -----------------

    def to_dict(self) -> dict:
        """JSON-compatible encoding; exact inverse of :meth:`from_dict`."""
        from repro.serialize import encode_value

        return encode_value(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro.serialize import decode_value

        return decode_value(raw, cls)

    def canonical_json(self) -> str:
        """Canonical one-line JSON text of this result.

        Two results are bit-identical iff their canonical JSON matches; the
        serial-vs-parallel and cached-vs-fresh differential tests compare
        these strings byte-for-byte.
        """
        from repro.serialize import canonical_dumps

        return canonical_dumps(self.to_dict())


class System:
    """One simulated machine, built and runnable exactly once.

    Construct with SPEC program names (the normal path) or with raw traces
    via :meth:`from_traces` for synthetic/validation workloads.
    """

    def __init__(
        self,
        config: SystemConfig,
        programs: Sequence[str],
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        from repro.workloads.spec import PROGRAMS

        traces = [
            iter(
                make_trace(
                    program,
                    seed=config.seed,
                    core_id=core_id,
                    software_prefetch=config.software_prefetch,
                )
            )
            for core_id, program in enumerate(programs)
        ]
        base_ipcs = [PROGRAMS[p].base_ipc for p in programs]
        self._build(config, list(programs), traces, base_ipcs, tracer)

    @classmethod
    def from_traces(
        cls,
        config: SystemConfig,
        traces: Sequence,
        base_ipcs: Sequence[float],
        labels: Optional[Sequence[str]] = None,
        tracer: "Optional[Tracer]" = None,
    ) -> "System":
        """Build a system from explicit per-core trace iterators.

        Args:
            traces: One TraceEvent iterator per core.
            base_ipcs: Each core's no-miss IPC.
            labels: Names for reporting (default ``custom-<i>``).
            tracer: Optional request-lifecycle tracer (repro.telemetry).
        """
        system = cls.__new__(cls)
        labels = list(labels) if labels else [f"custom-{i}" for i in range(len(traces))]
        system._build(config, labels, [iter(t) for t in traces], list(base_ipcs), tracer)
        return system

    def _build(
        self,
        config: SystemConfig,
        labels: List[str],
        traces: List,
        base_ipcs: List[float],
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        if len(labels) != config.cpu.num_cores:
            raise ValueError(
                f"{config.cpu.num_cores} cores but {len(labels)} programs"
            )
        if not (len(labels) == len(traces) == len(base_ipcs)):
            raise ValueError("labels, traces and base_ipcs must align")
        self.config = config
        self.programs = labels
        self.sim = Simulator()
        self.tracer = tracer
        self.controller = MemoryController(
            self.sim, config.memory,
            check_protocol=config.check_protocol,
            tracer=tracer,
            faults=config.faults if config.faults.enabled else None,
        )
        self.timeline_collector: "Optional[TimelineCollector]" = None
        if config.timeline.enabled:
            from repro.dram.devices import device_spec
            from repro.power.energy import EnergyAccountant
            from repro.timeline.collector import TimelineCollector

            mem = config.memory
            ranks = mem.physical_channels * mem.dimms_per_channel * mem.ranks_per_dimm
            self.timeline_collector = TimelineCollector(
                sim=self.sim,
                stats=self.controller.stats,
                config=config.timeline,
                accountant=EnergyAccountant(
                    calculator=device_spec(mem.device).power, ranks=ranks
                ),
                device_counters=self.controller.device_counters,
                queue_depth=self.controller.outstanding,
            )
            self.controller.timeline = self.timeline_collector
            self.controller.enable_idle_tracking(config.timeline.powerdown_entry_ps)
        self.l2 = L2FillTable(L2_CAPACITY_LINES)
        self.l2_mshr = Limiter(config.cpu.l2_mshr_entries, "l2.mshr")
        self._finished_core: Optional[Core] = None
        self._warmup_time_ps = 0
        self._warmup_insts: Optional[List[int]] = None
        self.cores: List[Core] = []
        for core_id, (trace, base_ipc) in enumerate(zip(traces, base_ipcs)):
            core = Core(
                sim=self.sim,
                core_id=core_id,
                config=config.cpu,
                base_ipc=base_ipc,
                trace=trace,
                controller=self.controller,
                l2=self.l2,
                l2_mshr=self.l2_mshr,
                target_instructions=config.instructions_per_core,
                on_finished=self._core_finished,
                warmup_instructions=config.warmup_instructions,
                on_warmup=self._warmup_reached,
            )
            self.cores.append(core)
        self._ran = False

    def _core_finished(self, core: Core) -> None:
        if self._finished_core is None:
            self._finished_core = core
            self.sim.stop()

    def _warmup_reached(self, core: Core) -> None:
        """First core past the warm-up point: restart measurement."""
        if self._warmup_insts is not None:
            return  # only the first core triggers the reset
        self._warmup_time_ps = self.sim.now
        self._warmup_insts = [c.committed_instructions for c in self.cores]
        self.controller.mark_measurement_start()

    def run(self) -> SimulationResult:
        """Run until the first core commits its instruction target."""
        if self._ran:
            raise RuntimeError("a System instance runs exactly once")
        self._ran = True
        for core in self.cores:
            core.start()
        if self.timeline_collector is not None:
            self.timeline_collector.start()
        self.sim.run(max_events=MAX_EVENTS_PER_RUN)
        elapsed = max(self.sim.now, 1)
        # Finalize the controller first: it closes the trailing idle gap,
        # so the timeline's final partial window sees full residency.
        mem_stats = self.controller.finalize()
        timeline: Optional[TimelineResult] = None
        if self.timeline_collector is not None:
            timeline = self.timeline_collector.finalize(self.sim.now)
        violations = None
        if self.config.check_protocol:
            from repro.check.protocol import ProtocolViolationError

            violations = self.controller.check_protocol_violations()
            if violations:
                raise ProtocolViolationError(violations)
        warm_insts = self._warmup_insts or [0] * len(self.cores)
        window = max(elapsed - self._warmup_time_ps, 1)
        cycle_ps = self.config.cpu.cycle_ps
        measured_ipcs = [
            (c.committed_instructions - warm) / (window / cycle_ps)
            for c, warm in zip(self.cores, warm_insts)
        ]
        return SimulationResult(
            config=self.config,
            programs=self.programs,
            elapsed_ps=elapsed,
            core_instructions=[c.committed_instructions for c in self.cores],
            core_ipcs=measured_ipcs,
            core_stats=[c.stats for c in self.cores],
            mem=mem_stats,
            l2_prefetch_hits=self.l2.demand_hits,
            events_fired=self.sim.events_fired,
            warmup_time_ps=self._warmup_time_ps,
            protocol_violations=violations,
            timeline=timeline,
        )


def run_system(
    config: SystemConfig,
    programs: Sequence[str],
    tracer: "Optional[Tracer]" = None,
) -> SimulationResult:
    """Build and run one system; the library's main entry point."""
    return System(config, programs, tracer=tracer).run()
