"""The conventional DDR2 channel used as the paper's baseline.

Unlike FB-DIMM, every DIMM of a DDR2 channel hangs off one shared command
bus and one shared bidirectional data bus (the stub-bus structure whose
signal-integrity limits motivated FB-DIMM in the first place, Section 2).
The data bus pays switching bubbles between bursts of different direction
or rank — the efficiency tax FB-DIMM's unidirectional links avoid.
"""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.controller.mapping import MappedAddress
from repro.dram.bank import AccessResult, Bank, RankTimer
from repro.dram.resources import BusResource, BusView, TaggedBusResource
from repro.dram.timing import TimingPs


class Ddr2Dimm:
    """One DIMM (one rank) on a shared DDR2 channel."""

    __slots__ = (
        "config", "timing", "dimm_id", "data_bus", "command_bus",
        "_views", "rank_timers", "banks", "_banks_per_dimm", "_clock",
    )

    def __init__(
        self,
        config: MemoryConfig,
        timing: TimingPs,
        channel_id: int,
        dimm_id: int,
        shared_data_bus: TaggedBusResource,
        shared_command_bus: BusResource,
    ) -> None:
        self.config = config
        self.timing = timing
        self.dimm_id = dimm_id
        self._banks_per_dimm = config.banks_per_dimm
        self._clock = timing.clock
        self.data_bus = shared_data_bus
        self.command_bus = shared_command_bus
        # Bursts from another rank or of the other direction pay the
        # channel's switching bubble; same-tag bursts stream gaplessly.
        self._views = {
            (rank, direction): BusView(shared_data_bus, (dimm_id, rank, direction))
            for rank in range(config.ranks_per_dimm)
            for direction in ("rd", "wr")
        }
        self.rank_timers = [RankTimer() for _ in range(config.ranks_per_dimm)]
        self.banks = [
            Bank(bank_id=b, timing=timing, page_policy=config.page_policy)
            for b in range(config.ranks_per_dimm * config.banks_per_dimm)
        ]

    def bank_of(self, mapped: MappedAddress) -> Bank:
        """The logic bank a mapped address lives in."""
        return self.banks[mapped.rank * self._banks_per_dimm + mapped.bank]

    def timer_of(self, mapped: MappedAddress) -> RankTimer:
        """The rank-level timing tracker for a mapped address."""
        return self.rank_timers[mapped.rank]

    def read_line(self, earliest: int, mapped: MappedAddress) -> AccessResult:
        """Read one cacheline; the command bus carries the ACT/RD pair."""
        clock = self._clock
        rank = mapped.rank
        start = self.command_bus.reserve(earliest, clock)
        # The command is latched at the next DRAM clock edge.
        return self.banks[rank * self._banks_per_dimm + mapped.bank].read(
            start + clock,
            mapped.row,
            1,
            self._views[(rank, "rd")],
            self.rank_timers[rank],
        )

    def write_line(self, earliest: int, mapped: MappedAddress) -> AccessResult:
        """Write one cacheline over the shared data bus."""
        clock = self._clock
        rank = mapped.rank
        start = self.command_bus.reserve(earliest, clock)
        return self.banks[rank * self._banks_per_dimm + mapped.bank].write(
            start + clock,
            mapped.row,
            self._views[(rank, "wr")],
            self.rank_timers[rank],
        )

    def bank_operation_counts(self) -> "tuple[int, int]":
        """(activate/precharge pairs, column accesses) across all banks."""
        acts = sum(b.stats.activates for b in self.banks)
        cols = sum(b.stats.reads + b.stats.writes for b in self.banks)
        return acts, cols
