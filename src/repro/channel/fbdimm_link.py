"""The FB-DIMM channel: two unidirectional, independently scheduled links.

Frame-accurate model (see :mod:`repro.channel.frames`).  Per memory frame —
two DRAM clocks, 6 ns at 667 MT/s:

* the **southbound** link carries three commands, or one command plus 16 B
  of write data (so a 64 B write needs four data frames);
* the **northbound** link carries 32 B of read data (two frames per line),
  which makes its peak bandwidth equal to one DDR2 channel's.

The AMBs form a daisy chain at ``amb_hop_ns`` per hop.  With Variable Read
Latency (VRL) disabled — the paper's default — every DIMM presents the
latency of the farthest DIMM, so the hop penalty is ``n_dimms * hop``
regardless of which DIMM answered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.channel.frames import NorthboundLink, SouthboundLink
from repro.config import MemoryConfig
from repro.engine.simulator import ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.retry import ChannelFaults


class ReadReturn:
    """Timing of one cacheline travelling north.

    Built once per read on the hot path, hence a plain ``__slots__``
    class rather than a dataclass.

    Attributes:
        link_start: When the first frame enters the northbound link.
        critical_at_mc: First 32 B frame (critical word) at the controller.
        full_at_mc: Entire line at the controller.
    """

    __slots__ = ("link_start", "critical_at_mc", "full_at_mc")

    def __init__(
        self, link_start: int, critical_at_mc: int, full_at_mc: int
    ) -> None:
        self.link_start = link_start
        self.critical_at_mc = critical_at_mc
        self.full_at_mc = full_at_mc

    def __repr__(self) -> str:
        return (
            f"ReadReturn(link_start={self.link_start},"
            f" critical_at_mc={self.critical_at_mc},"
            f" full_at_mc={self.full_at_mc})"
        )


class FbdimmLinks:
    """South/northbound links of one physical FB-DIMM channel."""

    __slots__ = (
        "frame_ps", "command_delay_ps", "hop_ps", "n_dimms", "vrl",
        "write_frames", "read_frames", "south", "north", "faults",
    )

    def __init__(self, config: MemoryConfig, channel_id: int) -> None:
        self.frame_ps = config.frame_ps
        self.command_delay_ps = ns(config.command_delay_ns)
        self.hop_ps = ns(config.amb_hop_ns)
        self.n_dimms = config.dimms_per_channel
        self.vrl = config.variable_read_latency
        self.write_frames = max(
            1, config.cacheline_bytes // 16
        )  # 16 B write data per southbound frame
        self.read_frames = max(1, config.cacheline_bytes // 32)
        self.south = SouthboundLink(f"ch{channel_id}.south", self.frame_ps)
        self.north = NorthboundLink(
            f"ch{channel_id}.north",
            self.frame_ps,
            phase_ps=self.command_delay_ps % self.frame_ps,
        )
        #: Optional CRC retry engine (repro.faults); the channel controller
        #: assigns it when fault injection is enabled.  None keeps every
        #: transfer on the seed fast path.
        self.faults: "Optional[ChannelFaults]" = None

    def hop_penalty(self, dimm: int) -> int:
        """Daisy-chain forwarding delay charged on the read-return path."""
        hops = (dimm + 1) if self.vrl else self.n_dimms
        return hops * self.hop_ps

    def send_command_ps(self, earliest: int) -> int:
        """Send one command south; return its arrival at the AMB.

        Under fault injection a CRC-corrupted command frame is replayed
        (the AMB NACKs it) until it decodes; the arrival is then the last
        replay's frame plus the decode delay.
        """
        frame_start = self.south.reserve_command(earliest)
        if self.faults is not None:
            first = (frame_start, frame_start + self.frame_ps)
            frame_start, _ = self.faults.transfer(
                "SB_CMD",
                first,
                lambda at, attempt: self._reserve_command_slot(at, attempt),
            )
        return frame_start + self.command_delay_ps

    def _reserve_command_slot(self, earliest: int, retry: int) -> "tuple[int, int]":
        start = self.south.reserve_command(earliest, retry=retry)
        return start, start + self.frame_ps

    def send_write_ps(self, earliest: int, dimm: int) -> int:
        """Stream a command + a cacheline of write data south.

        The command rides in the first data frame (1 command + 16 B per
        frame).  Returns when the full write has arrived at the target AMB;
        the DRAM write can begin then.  A corrupted write stream is
        replayed whole — write data is not committed from a frame whose
        CRC failed.
        """
        first_start, data_end = self.south.reserve_write_data(
            earliest, self.write_frames
        )
        if self.faults is not None:
            _, data_end = self.faults.transfer(
                "SB_DATA",
                (first_start, data_end),
                lambda at, attempt: self.south.reserve_write_data(
                    at, self.write_frames, retry=attempt
                ),
            )
        return data_end + self.command_delay_ps + self.hop_penalty(dimm)

    def return_read(self, data_ready: int, dimm: int) -> ReadReturn:
        """Carry one cacheline north once the AMB has (or is streaming) it.

        ``data_ready`` is when the first beats are available at the AMB
        (cut-through from the DIMM's DDR2 bus, or immediately for an
        AMB-cache hit).  A line whose CRC fails at the controller is
        replayed from the AMB's retransmission buffer after the backoff
        (which covers the southbound NACK round trip).
        """
        start, end = self.north.reserve_line(data_ready, self.read_frames)
        if self.faults is not None:
            start, end = self.faults.transfer(
                "NB_LINE",
                (start, end),
                lambda at, attempt: self.north.reserve_line(
                    at, self.read_frames, retry=attempt
                ),
            )
        penalty = self.hop_penalty(dimm)
        return ReadReturn(
            link_start=start,
            critical_at_mc=start + self.frame_ps + penalty,
            full_at_mc=end + penalty,
        )
