"""The FB-DIMM channel: two unidirectional, independently scheduled links.

Frame-accurate model (see :mod:`repro.channel.frames`).  Per memory frame —
two DRAM clocks, 6 ns at 667 MT/s:

* the **southbound** link carries three commands, or one command plus 16 B
  of write data (so a 64 B write needs four data frames);
* the **northbound** link carries 32 B of read data (two frames per line),
  which makes its peak bandwidth equal to one DDR2 channel's.

The AMBs form a daisy chain at ``amb_hop_ns`` per hop.  With Variable Read
Latency (VRL) disabled — the paper's default — every DIMM presents the
latency of the farthest DIMM, so the hop penalty is ``n_dimms * hop``
regardless of which DIMM answered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.frames import NorthboundLink, SouthboundLink
from repro.config import MemoryConfig
from repro.engine.simulator import ns


@dataclass(frozen=True)
class ReadReturn:
    """Timing of one cacheline travelling north.

    Attributes:
        link_start: When the first frame enters the northbound link.
        critical_at_mc: First 32 B frame (critical word) at the controller.
        full_at_mc: Entire line at the controller.
    """

    link_start: int
    critical_at_mc: int
    full_at_mc: int


class FbdimmLinks:
    """South/northbound links of one physical FB-DIMM channel."""

    def __init__(self, config: MemoryConfig, channel_id: int) -> None:
        self.frame_ps = config.frame_ps
        self.command_delay_ps = ns(config.command_delay_ns)
        self.hop_ps = ns(config.amb_hop_ns)
        self.n_dimms = config.dimms_per_channel
        self.vrl = config.variable_read_latency
        self.write_frames = max(
            1, config.cacheline_bytes // 16
        )  # 16 B write data per southbound frame
        self.read_frames = max(1, config.cacheline_bytes // 32)
        self.south = SouthboundLink(f"ch{channel_id}.south", self.frame_ps)
        self.north = NorthboundLink(
            f"ch{channel_id}.north",
            self.frame_ps,
            phase_ps=self.command_delay_ps % self.frame_ps,
        )

    def hop_penalty(self, dimm: int) -> int:
        """Daisy-chain forwarding delay charged on the read-return path."""
        hops = (dimm + 1) if self.vrl else self.n_dimms
        return hops * self.hop_ps

    def send_command(self, earliest: int) -> int:
        """Send one command south; return its arrival at the AMB."""
        frame_start = self.south.reserve_command(earliest)
        return frame_start + self.command_delay_ps

    def send_write(self, earliest: int, dimm: int) -> int:
        """Stream a command + a cacheline of write data south.

        The command rides in the first data frame (1 command + 16 B per
        frame).  Returns when the full write has arrived at the target AMB;
        the DRAM write can begin then.
        """
        _, data_end = self.south.reserve_write_data(earliest, self.write_frames)
        return data_end + self.command_delay_ps + self.hop_penalty(dimm)

    def return_read(self, data_ready: int, dimm: int) -> ReadReturn:
        """Carry one cacheline north once the AMB has (or is streaming) it.

        ``data_ready`` is when the first beats are available at the AMB
        (cut-through from the DIMM's DDR2 bus, or immediately for an
        AMB-cache hit).
        """
        start, end = self.north.reserve_line(data_ready, self.read_frames)
        penalty = self.hop_penalty(dimm)
        return ReadReturn(
            link_start=start,
            critical_at_mc=start + self.frame_ps + penalty,
            full_at_mc=end + penalty,
        )
