"""Interconnect models: the FB-DIMM two-level structure and the DDR2 baseline.

First level: narrow, high-speed southbound/northbound FB-DIMM links between
the controller and the daisy-chained AMBs.  Second level: a private DDR2 bus
per DIMM behind its AMB.  The DDR2 baseline instead shares one command bus
and one data bus among all DIMMs of a channel.
"""

from repro.channel.fbdimm_link import FbdimmLinks
from repro.channel.amb import Amb
from repro.channel.ddr2_bus import Ddr2Dimm

__all__ = ["FbdimmLinks", "Amb", "Ddr2Dimm"]
