"""Frame-accurate FB-DIMM link schedulers.

The FB-DIMM channel moves data in fixed *frames* aligned to the frame
clock (two DRAM clocks; 6 ns at 667 MT/s).  Per Section 2:

* a **southbound** frame carries three commands, or one command plus 16 B
  of write data;
* a **northbound** frame carries 32 B of read data, so one 64 B cacheline
  occupies two consecutive frames.

These schedulers allocate whole frame slots on that aligned grid — the
precise counterpart of the continuous-time :class:`BusResource`
approximation, exposing the same ``busy_ps`` / ``prune_before`` surface so
the channel controller can treat either uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Southbound frame capacity per Section 2.
COMMANDS_PER_FRAME = 3
COMMANDS_WITH_DATA = 1


class SouthboundLink:
    """Frame allocator for the command/write-data link."""

    def __init__(self, name: str, frame_ps: int) -> None:
        if frame_ps <= 0:
            raise ValueError("frame period must be positive")
        self.name = name
        self.frame_ps = frame_ps
        #: frame index -> [command_count, carries_data]
        self._frames: Dict[int, List] = {}
        self.frames_used = 0
        #: Optional booking journal for the protocol checker:
        #: ("cmd"|"data", frame_start_ps).  None keeps the hot path lean.
        self.journal: Optional[List[Tuple[str, int]]] = None

    def enable_journal(self) -> None:
        """Record every frame booking (protocol-checker support)."""
        if self.journal is None:
            self.journal = []

    # -- grid helpers -----------------------------------------------------

    def _first_index_at(self, earliest: int) -> int:
        return -(-earliest // self.frame_ps)  # ceil division

    def frame_start(self, index: int) -> int:
        return index * self.frame_ps

    # -- allocation ---------------------------------------------------------

    def reserve_command(self, earliest: int) -> int:
        """Place one command in the first frame with a free command slot.

        Returns the frame's start time (the command is on the wire from
        then; decode latency is the caller's command-delay constant).
        """
        index = self._first_index_at(earliest)
        while True:
            state = self._frames.get(index)
            if state is None:
                self._frames[index] = [1, False]
                self.frames_used += 1
                break
            commands, has_data = state
            limit = COMMANDS_WITH_DATA if has_data else COMMANDS_PER_FRAME
            if commands < limit:
                state[0] += 1
                break
            index += 1
        start = self.frame_start(index)
        if self.journal is not None:
            self.journal.append(("cmd", start))
        return start

    def reserve_write_data(self, earliest: int, frames_needed: int) -> Tuple[int, int]:
        """Stream write data over ``frames_needed`` data-capable frames.

        Frames need not be contiguous (real channels interleave commands
        between write-data frames).  Returns (first_frame_start, end_time
        of the last frame).
        """
        if frames_needed < 1:
            raise ValueError("need at least one data frame")
        index = self._first_index_at(earliest)
        first_start = None
        placed = 0
        while placed < frames_needed:
            state = self._frames.get(index)
            if state is None:
                self._frames[index] = [0, True]
                self.frames_used += 1
            elif not state[1] and state[0] <= COMMANDS_WITH_DATA:
                state[1] = True
            else:
                index += 1
                continue
            if first_start is None:
                first_start = self.frame_start(index)
            if self.journal is not None:
                self.journal.append(("data", self.frame_start(index)))
            placed += 1
            last_end = self.frame_start(index) + self.frame_ps
            index += 1
        assert first_start is not None
        return first_start, last_end

    # -- bookkeeping ----------------------------------------------------------

    @property
    def busy_ps(self) -> int:
        """Occupied wire time (frames that carry anything)."""
        return self.frames_used * self.frame_ps

    def prune_before(self, time_ps: int) -> None:
        """Forget frames that ended at or before ``time_ps``."""
        horizon = time_ps // self.frame_ps
        stale = [idx for idx in self._frames if (idx + 1) * self.frame_ps <= time_ps]
        for idx in stale:
            del self._frames[idx]
        del horizon


class NorthboundLink:
    """Frame allocator for the read-return link.

    A cacheline's frames are allocated contiguously (the AMB streams the
    burst); different cachelines backfill earlier holes freely.

    ``phase_ps`` shifts the frame grid.  The links run phase-locked to the
    command path: DRAM data becomes available ``command_delay`` after a
    southbound frame boundary plus whole DRAM clocks, so anchoring the
    northbound grid at that phase lets a just-ready burst catch a frame
    immediately — which is how the paper's 63/33 ns budgets count.
    """

    def __init__(self, name: str, frame_ps: int, phase_ps: int = 0) -> None:
        if frame_ps <= 0:
            raise ValueError("frame period must be positive")
        if not 0 <= phase_ps < frame_ps:
            raise ValueError("phase must be within one frame")
        self.name = name
        self.frame_ps = frame_ps
        self.phase_ps = phase_ps
        self._taken: Dict[int, bool] = {}
        self.frames_used = 0
        #: Optional booking journal for the protocol checker:
        #: ("line", first_frame_start_ps, frames).
        self.journal: Optional[List[Tuple[str, int, int]]] = None

    def enable_journal(self) -> None:
        """Record every line booking (protocol-checker support)."""
        if self.journal is None:
            self.journal = []

    def _first_index_at(self, earliest: int) -> int:
        return max(0, -(-(earliest - self.phase_ps) // self.frame_ps))

    def frame_start(self, index: int) -> int:
        return index * self.frame_ps + self.phase_ps

    def reserve_line(self, earliest: int, frames_needed: int) -> Tuple[int, int]:
        """Allocate ``frames_needed`` contiguous frames at/after ``earliest``.

        Returns (first_frame_start, last_frame_end).
        """
        if frames_needed < 1:
            raise ValueError("need at least one frame")
        index = self._first_index_at(earliest)
        while True:
            if all(index + k not in self._taken for k in range(frames_needed)):
                for k in range(frames_needed):
                    self._taken[index + k] = True
                self.frames_used += frames_needed
                start = self.frame_start(index)
                if self.journal is not None:
                    self.journal.append(("line", start, frames_needed))
                return start, start + frames_needed * self.frame_ps
            index += 1

    @property
    def busy_ps(self) -> int:
        return self.frames_used * self.frame_ps

    def prune_before(self, time_ps: int) -> None:
        stale = [
            idx
            for idx in self._taken
            if self.frame_start(idx) + self.frame_ps <= time_ps
        ]
        for idx in stale:
            del self._taken[idx]
