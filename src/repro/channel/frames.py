"""Frame-accurate FB-DIMM link schedulers.

The FB-DIMM channel moves data in fixed *frames* aligned to the frame
clock (two DRAM clocks; 6 ns at 667 MT/s).  Per Section 2:

* a **southbound** frame carries three commands, or one command plus 16 B
  of write data;
* a **northbound** frame carries 32 B of read data, so one 64 B cacheline
  occupies two consecutive frames.

These schedulers allocate whole frame slots on that aligned grid — the
precise counterpart of the continuous-time :class:`BusResource`
approximation, exposing the same ``busy_ps`` / ``prune_before`` surface so
the channel controller can treat either uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Southbound frame capacity per Section 2.
COMMANDS_PER_FRAME = 3
COMMANDS_WITH_DATA = 1

#: Wire-image geometry of the frame codec below.  The timing schedulers
#: never pack bytes on the hot path; the codec defines the CRC-protected
#: frame layout that :mod:`repro.faults` corruption probabilities abstract,
#: and gives the fault tests a concrete image to flip bits in.
WRITE_DATA_BYTES = 16  # southbound payload per frame (Section 2)
READ_DATA_BYTES = 32  # northbound payload per frame (Section 2)
COMMAND_BYTES = 3  # one command slot (24-bit encoded command)
_SOUTH_HEADER = 1  # [n_commands:2][has_data:1] packed in one byte
_CRC_BYTES = 2
SOUTH_FRAME_BYTES = (
    _SOUTH_HEADER + COMMANDS_PER_FRAME * COMMAND_BYTES + WRITE_DATA_BYTES + _CRC_BYTES
)
NORTH_FRAME_BYTES = READ_DATA_BYTES + _CRC_BYTES


class FrameError(ValueError):
    """A frame failed to decode: bad length, malformed header, or CRC."""


def frame_crc(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over ``data``.

    Real FB-DIMM frames carry CRC on both links (22-bit southbound,
    12-bit northbound); a 16-bit CRC keeps the wire image simple while
    preserving the property the fault model relies on: every single-bit
    corruption of a frame is detected.
    """
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) if crc & 0x8000 else (crc << 1)
            crc &= 0xFFFF
    return crc


def pack_southbound_frame(commands: Sequence[int], data: bytes = b"") -> bytes:
    """Pack one southbound frame: up to three commands, or one + 16 B data.

    Each command is a 24-bit opaque encoding (the checker cares about slot
    occupancy, not command semantics).  Raises :class:`FrameError` on a
    payload that no legal frame can carry.
    """
    commands = tuple(commands)
    if data and len(data) != WRITE_DATA_BYTES:
        raise FrameError(
            f"southbound data payload must be {WRITE_DATA_BYTES} B, "
            f"got {len(data)}"
        )
    if not commands and not data:
        raise FrameError("an empty frame is never transmitted")
    limit = COMMANDS_WITH_DATA if data else COMMANDS_PER_FRAME
    if len(commands) > limit:
        raise FrameError(
            f"{len(commands)} command(s) with{' ' if data else 'out '}data: "
            f"a frame carries {COMMANDS_PER_FRAME} commands, or "
            f"{COMMANDS_WITH_DATA} command plus {WRITE_DATA_BYTES} B of data"
        )
    for command in commands:
        if not 0 <= command < 1 << (8 * COMMAND_BYTES):
            raise FrameError(f"command {command:#x} exceeds 24 bits")
    header = (len(commands) << 1) | (1 if data else 0)
    body = bytearray([header])
    for slot in range(COMMANDS_PER_FRAME):
        value = commands[slot] if slot < len(commands) else 0
        body += value.to_bytes(COMMAND_BYTES, "big")
    body += data if data else bytes(WRITE_DATA_BYTES)
    return bytes(body) + frame_crc(bytes(body)).to_bytes(_CRC_BYTES, "big")


def unpack_southbound_frame(raw: bytes) -> Tuple[Tuple[int, ...], bytes]:
    """Decode a southbound frame back to ``(commands, data)``.

    Raises :class:`FrameError` on anything a real AMB would reject: wrong
    length, CRC mismatch (corruption), a header describing an impossible
    frame, or non-zero bits in unused command slots.
    """
    if len(raw) != SOUTH_FRAME_BYTES:
        raise FrameError(
            f"southbound frame is {SOUTH_FRAME_BYTES} B, got {len(raw)}"
        )
    body, crc = raw[:-_CRC_BYTES], int.from_bytes(raw[-_CRC_BYTES:], "big")
    if frame_crc(body) != crc:
        raise FrameError("southbound frame CRC mismatch")
    n_commands, has_data = body[0] >> 1, bool(body[0] & 1)
    limit = COMMANDS_WITH_DATA if has_data else COMMANDS_PER_FRAME
    if n_commands > limit or (not has_data and n_commands == 0):
        raise FrameError(
            f"malformed header: {n_commands} command(s), data={has_data}"
        )
    commands = []
    for slot in range(COMMANDS_PER_FRAME):
        start = _SOUTH_HEADER + slot * COMMAND_BYTES
        value = int.from_bytes(body[start:start + COMMAND_BYTES], "big")
        if slot < n_commands:
            commands.append(value)
        elif value:
            raise FrameError(f"unused command slot {slot} is not zeroed")
    payload = body[-WRITE_DATA_BYTES:]
    if not has_data and any(payload):
        raise FrameError("command-only frame carries data bits")
    return tuple(commands), bytes(payload) if has_data else b""


def pack_northbound_frame(payload: bytes) -> bytes:
    """Pack one northbound frame: exactly 32 B of read data plus CRC."""
    if len(payload) != READ_DATA_BYTES:
        raise FrameError(
            f"northbound payload must be {READ_DATA_BYTES} B, got {len(payload)}"
        )
    return payload + frame_crc(payload).to_bytes(_CRC_BYTES, "big")


def unpack_northbound_frame(raw: bytes) -> bytes:
    """Decode a northbound frame; raises :class:`FrameError` on corruption."""
    if len(raw) != NORTH_FRAME_BYTES:
        raise FrameError(
            f"northbound frame is {NORTH_FRAME_BYTES} B, got {len(raw)}"
        )
    payload, crc = raw[:-_CRC_BYTES], int.from_bytes(raw[-_CRC_BYTES:], "big")
    if frame_crc(payload) != crc:
        raise FrameError("northbound frame CRC mismatch")
    return payload


class SouthboundLink:
    """Frame allocator for the command/write-data link."""

    __slots__ = ("name", "frame_ps", "_frames", "frames_used", "journal")

    def __init__(self, name: str, frame_ps: int) -> None:
        if frame_ps <= 0:
            raise ValueError("frame period must be positive")
        self.name = name
        self.frame_ps = frame_ps
        #: frame index -> [command_count, carries_data]
        self._frames: Dict[int, List] = {}
        self.frames_used = 0
        #: Optional booking journal for the protocol checker:
        #: ("cmd"|"data", frame_start_ps, retry_attempt).  Attempt 0 is the
        #: original transfer; retries of a CRC-corrupted transfer book real
        #: frames too and carry their attempt number so the checker can
        #: audit the retry budget.  None keeps the hot path lean.
        self.journal: Optional[List[Tuple[str, int, int]]] = None

    def enable_journal(self) -> None:
        """Record every frame booking (protocol-checker support)."""
        if self.journal is None:
            self.journal = []

    # -- grid helpers -----------------------------------------------------

    def _first_index_at(self, earliest: int) -> int:
        return -(-earliest // self.frame_ps)  # ceil division

    def frame_start_ps(self, index: int) -> int:
        return index * self.frame_ps

    # -- allocation ---------------------------------------------------------

    def reserve_command(self, earliest: int, retry: int = 0) -> int:
        """Place one command in the first frame with a free command slot.

        Returns the frame's start time (the command is on the wire from
        then; decode latency is the caller's command-delay constant).
        ``retry`` is the replay attempt number journalled for the checker.
        """
        frame_ps = self.frame_ps
        frames = self._frames
        get = frames.get
        index = -(-earliest // frame_ps)  # ceil division
        while True:
            state = get(index)
            if state is None:
                frames[index] = [1, False]
                self.frames_used += 1
                break
            commands, has_data = state
            limit = COMMANDS_WITH_DATA if has_data else COMMANDS_PER_FRAME
            if commands < limit:
                state[0] += 1
                break
            index += 1
        start = index * frame_ps
        if self.journal is not None:
            self.journal.append(("cmd", start, retry))
        return start

    def reserve_write_data(
        self, earliest: int, frames_needed: int, retry: int = 0
    ) -> Tuple[int, int]:
        """Stream write data over ``frames_needed`` data-capable frames.

        Frames need not be contiguous (real channels interleave commands
        between write-data frames).  Returns (first_frame_start, end_time
        of the last frame).
        """
        if frames_needed < 1:
            raise ValueError("need at least one data frame")
        frame_ps = self.frame_ps
        frames = self._frames
        get = frames.get
        journal = self.journal
        index = -(-earliest // frame_ps)  # ceil division
        first_start = None
        placed = 0
        while placed < frames_needed:
            state = get(index)
            if state is None:
                frames[index] = [0, True]
                self.frames_used += 1
            elif not state[1] and state[0] <= COMMANDS_WITH_DATA:
                state[1] = True
            else:
                index += 1
                continue
            start = index * frame_ps
            if first_start is None:
                first_start = start
            if journal is not None:
                journal.append(("data", start, retry))
            placed += 1
            last_end = start + frame_ps
            index += 1
        assert first_start is not None
        return first_start, last_end

    # -- bookkeeping ----------------------------------------------------------

    @property
    def busy_ps(self) -> int:
        """Occupied wire time (frames that carry anything)."""
        return self.frames_used * self.frame_ps

    def prune_before(self, time_ps: int) -> None:
        """Forget frames that ended at or before ``time_ps``."""
        frames = self._frames
        if not frames:
            return
        frame_ps = self.frame_ps
        stale = [idx for idx in frames if (idx + 1) * frame_ps <= time_ps]
        for idx in stale:
            del frames[idx]


class NorthboundLink:
    """Frame allocator for the read-return link.

    A cacheline's frames are allocated contiguously (the AMB streams the
    burst); different cachelines backfill earlier holes freely.

    ``phase_ps`` shifts the frame grid.  The links run phase-locked to the
    command path: DRAM data becomes available ``command_delay`` after a
    southbound frame boundary plus whole DRAM clocks, so anchoring the
    northbound grid at that phase lets a just-ready burst catch a frame
    immediately — which is how the paper's 63/33 ns budgets count.
    """

    __slots__ = ("name", "frame_ps", "phase_ps", "_taken", "frames_used", "journal")

    def __init__(self, name: str, frame_ps: int, phase_ps: int = 0) -> None:
        if frame_ps <= 0:
            raise ValueError("frame period must be positive")
        if not 0 <= phase_ps < frame_ps:
            raise ValueError("phase must be within one frame")
        self.name = name
        self.frame_ps = frame_ps
        self.phase_ps = phase_ps
        self._taken: Dict[int, bool] = {}
        self.frames_used = 0
        #: Optional booking journal for the protocol checker:
        #: ("line", first_frame_start_ps, frames, retry_attempt).
        self.journal: Optional[List[Tuple[str, int, int, int]]] = None

    def enable_journal(self) -> None:
        """Record every line booking (protocol-checker support)."""
        if self.journal is None:
            self.journal = []

    def _first_index_at(self, earliest: int) -> int:
        return max(0, -(-(earliest - self.phase_ps) // self.frame_ps))

    def frame_start_ps(self, index: int) -> int:
        return index * self.frame_ps + self.phase_ps

    def reserve_line(
        self, earliest: int, frames_needed: int, retry: int = 0
    ) -> Tuple[int, int]:
        """Allocate ``frames_needed`` contiguous frames at/after ``earliest``.

        Returns (first_frame_start, last_frame_end).  ``retry`` is the
        replay attempt number journalled for the checker.
        """
        if frames_needed < 1:
            raise ValueError("need at least one frame")
        frame_ps = self.frame_ps
        phase_ps = self.phase_ps
        taken = self._taken
        index = -(-(earliest - phase_ps) // frame_ps)  # ceil division
        if index < 0:
            index = 0
        if frames_needed == 2:
            # One 64 B cacheline = two frames: the overwhelmingly common
            # call, special-cased to two dict probes per candidate slot.
            while index in taken or index + 1 in taken:
                index += 1
            taken[index] = True
            taken[index + 1] = True
        else:
            while not all(index + k not in taken for k in range(frames_needed)):
                index += 1
            for k in range(frames_needed):
                taken[index + k] = True
        self.frames_used += frames_needed
        start = index * frame_ps + phase_ps
        if self.journal is not None:
            self.journal.append(("line", start, frames_needed, retry))
        return start, start + frames_needed * frame_ps

    @property
    def busy_ps(self) -> int:
        return self.frames_used * self.frame_ps

    def prune_before(self, time_ps: int) -> None:
        taken = self._taken
        if not taken:
            return
        frame_ps = self.frame_ps
        horizon = time_ps - self.phase_ps - frame_ps
        stale = [idx for idx in taken if idx * frame_ps <= horizon]
        for idx in stale:
            del taken[idx]
