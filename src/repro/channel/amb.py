"""The Advanced Memory Buffer of one DIMM, with its AMB cache.

The AMB owns the DIMM's private DDR2 data bus and logic banks.  Under AMB
prefetching it executes the *group fetch* of Section 3.2: one special
command from the controller becomes one ACT plus K pipelined column
accesses; the demanded line is forwarded north immediately (cut-through)
while the K-1 prefetched lines stream into the AMB cache.

The tag store (:class:`~repro.controller.prefetch_table.PrefetchTable`)
lives logically at the memory controller; it is instantiated here per-AMB
because its contents mirror this AMB's data array one-to-one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config import MemoryConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.retry import ChannelFaults
    from repro.prefetch.lifecycle import PrefetchLifecycle
    from repro.prefetch.policy import PrefetchPolicy
from repro.controller.mapping import MappedAddress
from repro.controller.prefetch_table import PrefetchTable
from repro.dram.bank import AccessResult, Bank, RankTimer
from repro.dram.resources import BusResource
from repro.dram.timing import TimingPs


class GroupFetch:
    """Outcome of a demand miss under AMB prefetching.

    One is built per prefetch-mode demand miss, hence a plain
    ``__slots__`` class rather than a dataclass.

    Attributes:
        demanded_start: Cut-through start of the demanded line's burst.
        fills: line address -> fill completion time for the prefetched lines.
        last_fill: When the whole group is resident in the AMB cache.
    """

    __slots__ = ("demanded_start", "fills", "last_fill")

    def __init__(
        self, demanded_start: int, fills: Dict[int, int], last_fill: int
    ) -> None:
        self.demanded_start = demanded_start
        self.fills = fills
        self.last_fill = last_fill


class Amb:
    """One DIMM behind its Advanced Memory Buffer."""

    __slots__ = (
        "config", "timing", "dimm_id", "data_bus", "rank_timers", "banks",
        "table", "pending_fills", "prefetched_lines", "faults",
        "policy", "lifecycle", "_banks_per_dimm", "_region_lines",
    )

    def __init__(
        self,
        config: MemoryConfig,
        timing: TimingPs,
        channel_id: int,
        dimm_id: int,
    ) -> None:
        self.config = config
        self.timing = timing
        self.dimm_id = dimm_id
        self._banks_per_dimm = config.banks_per_dimm
        self._region_lines = config.prefetch.region_cachelines
        self.data_bus = BusResource(f"ch{channel_id}.dimm{dimm_id}.ddr2")
        # All ranks of the DIMM share the AMB's DDR2 bus; each rank has
        # its own cross-bank timer (tRRD/tWTR) and logic banks.
        self.rank_timers = [RankTimer() for _ in range(config.ranks_per_dimm)]
        self.banks = [
            Bank(bank_id=b, timing=timing, page_policy=config.page_policy)
            for b in range(config.ranks_per_dimm * config.banks_per_dimm)
        ]
        from repro.config import PrefetchLocation

        has_amb_cache = (
            config.prefetch.enabled
            and config.prefetch.location is PrefetchLocation.AMB
        )
        self.table: Optional[PrefetchTable] = (
            PrefetchTable(config.prefetch) if has_amb_cache else None
        )
        #: Prediction policy deciding the group-fetch companions; present
        #: for both buffer placements whenever prefetching is configured.
        self.policy: "Optional[PrefetchPolicy]" = None
        if config.prefetch.enabled:
            from repro.prefetch.policy import create_policy

            self.policy = create_policy(config.prefetch)
        #: Optional per-prefetch lifecycle tracker (observation only);
        #: attached by the channel controller, None keeps every hook free.
        self.lifecycle: "Optional[PrefetchLifecycle]" = None
        #: In-flight group fetches: region id -> {line -> fill time}.
        #: A read that arrives while its region is still streaming into the
        #: AMB cache merges with the fill instead of re-fetching.
        self.pending_fills: Dict[int, Dict[int, int]] = {}
        self.prefetched_lines = 0  # lines written into the AMB cache
        #: Optional fault-injection state shared with the channel
        #: controller; drives the AMB-cache parity checks when set.
        self.faults: "Optional[ChannelFaults]" = None

    # ------------------------------------------------------------------
    # Rank/bank resolution
    # ------------------------------------------------------------------

    def bank_of(self, mapped: MappedAddress) -> Bank:
        """The logic bank a mapped address lives in."""
        return self.banks[mapped.rank * self._banks_per_dimm + mapped.bank]

    def timer_of(self, mapped: MappedAddress) -> RankTimer:
        """The rank-level timing tracker for a mapped address."""
        return self.rank_timers[mapped.rank]

    # ------------------------------------------------------------------
    # Demand path without prefetching
    # ------------------------------------------------------------------

    def read_line(self, earliest: int, mapped: MappedAddress) -> AccessResult:
        """Plain single-line read (FB-DIMM baseline)."""
        return self.bank_of(mapped).read(
            earliest, mapped.row, 1, self.data_bus, self.timer_of(mapped)
        )

    def write_line(self, earliest: int, mapped: MappedAddress) -> AccessResult:
        """Single-line write; invalidates any stale AMB-cache copy."""
        return self.bank_of(mapped).write(
            earliest, mapped.row, self.data_bus, self.timer_of(mapped)
        )

    # ------------------------------------------------------------------
    # AMB prefetching
    # ------------------------------------------------------------------

    def cache_lookup(self, line_addr: int) -> Optional[int]:
        """Probe the AMB cache (tags at the controller) for a read.

        Returns the time at which the data is (or will be) available at the
        AMB — 0 for already-resident lines — or None on a miss.  Pending
        group fetches count as hits that become ready at their fill time.
        """
        assert self.table is not None, "cache_lookup requires prefetching"
        if (
            self.faults is not None
            and self.table.contains(line_addr)
            and self.faults.cached_line_flipped()
        ):
            # Parity detected a bit-flipped copy: void the entry before the
            # tag probe, so the lookup below counts a miss and the demand
            # re-fetches the line from DRAM (no silent corruption served).
            self.table.invalidate(line_addr)
            if self.lifecycle is not None:
                self.lifecycle.on_invalidate(line_addr)
        if self.table.lookup(line_addr):
            if self.lifecycle is not None:
                self.lifecycle.on_hit(line_addr)
            if self.policy is not None:
                self.policy.observe_hit(line_addr)
            return 0
        region = line_addr // self._region_lines
        pending = self.pending_fills.get(region)
        if pending is not None and line_addr in pending:
            self.table.stats.hits += 1  # merged with an in-flight fill
            if self.lifecycle is not None:
                self.lifecycle.on_late(line_addr)
            return pending[line_addr]
        return None

    def group_order(self, demanded_line: int) -> List[int]:
        """The region's lines in fetch order: demanded first, then the
        policy's companion predictions (Section 3.2 under the default
        region policy: the rest of the region by address)."""
        assert self.policy is not None, "group_order requires prefetching"
        return [demanded_line] + self.policy.prefetch_lines(demanded_line)

    def group_read(
        self, earliest: int, mapped: MappedAddress, order: List[int]
    ) -> AccessResult:
        """Issue one ACT plus len(order) pipelined column accesses.

        Raw DRAM-side group read shared by both prefetch placements (AMB
        cache here, or a controller-side buffer across the channel).
        """
        return self.bank_of(mapped).read(
            earliest, mapped.row, len(order), self.data_bus, self.timer_of(mapped)
        )

    def group_fetch(
        self, earliest: int, mapped: MappedAddress, demanded_line: int
    ) -> GroupFetch:
        """Fetch the demanded line plus its region into the AMB cache.

        The demanded line's column access is issued first; the remaining
        lines of the region follow in address order, fully pipelined on the
        DIMM's DDR2 bus (Section 3.2: burst length is unchanged, the AMB
        simply issues multiple column accesses).
        """
        assert self.table is not None
        region = demanded_line // self._region_lines
        if self.policy is not None:
            self.policy.observe_miss(demanded_line)
        order = self.group_order(demanded_line)
        result = self.group_read(earliest, mapped, order)

        fills: Dict[int, int] = {}
        for line, fill_time in zip(order[1:], result.data_times[1:]):
            fills[line] = fill_time
        if fills:
            self.pending_fills[region] = fills
            self.prefetched_lines += len(fills)
            if self.lifecycle is not None:
                self.lifecycle.on_issue(fills)
        return GroupFetch(
            demanded_start=result.data_starts[0],
            fills=fills,
            last_fill=result.data_times[-1] if fills else result.data_times[0],
        )

    def commit_fills(self, region: int) -> None:
        """Move a completed group fetch from pending state into the tags."""
        assert self.table is not None
        fills = self.pending_fills.pop(region, None)
        if fills:
            if self.lifecycle is not None:
                # Fills become resident before the insert below so that a
                # same-batch eviction of a just-filled line is charged to
                # the right instance.
                self.lifecycle.on_fill(fills)
            self.table.insert(fills.keys())

    def invalidate(self, line_addr: int) -> None:
        """A write to ``line_addr`` makes any AMB copy stale."""
        if self.table is None:
            return
        self.table.invalidate(line_addr)
        region = line_addr // self._region_lines
        pending = self.pending_fills.get(region)
        if pending is not None:
            pending.pop(line_addr, None)
        if self.lifecycle is not None:
            self.lifecycle.on_invalidate(line_addr)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bank_operation_counts(self) -> "tuple[int, int]":
        """(activate/precharge pairs, column accesses) across all banks."""
        acts = sum(b.stats.activates for b in self.banks)
        cols = sum(b.stats.reads + b.stats.writes for b in self.banks)
        return acts, cols
