"""Post-run analysis: latency distributions, utilisation, run reports."""

from repro.analysis.latency import LatencyDistribution
from repro.analysis.report import run_report
from repro.analysis.utilisation import channel_utilisation_report

__all__ = ["LatencyDistribution", "run_report", "channel_utilisation_report"]
