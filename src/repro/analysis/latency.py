"""Latency distribution analysis.

Average latency (what the paper's Figures 5 and 10 plot) hides the tail
that queueing creates; this module summarises the captured per-request
latencies into percentiles and a fixed-bucket histogram so the idle-vs-
queued split is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.stats.collector import MemSystemStats


@dataclass(frozen=True)
class LatencyDistribution:
    """Summary statistics of demand-read latencies (nanoseconds)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    max_ns: float
    min_ns: float

    @classmethod
    def from_samples_ps(cls, samples_ps: Sequence[int]) -> "LatencyDistribution":
        """Build from picosecond samples (as captured by MemSystemStats)."""
        if not samples_ps:
            raise ValueError("no latency samples captured; call "
                             "stats.enable_latency_capture() before the run")
        arr = np.asarray(samples_ps, dtype=np.float64) / 1000.0
        return cls(
            count=len(arr),
            mean_ns=float(arr.mean()),
            p50_ns=float(np.percentile(arr, 50)),
            p90_ns=float(np.percentile(arr, 90)),
            p99_ns=float(np.percentile(arr, 99)),
            max_ns=float(arr.max()),
            min_ns=float(arr.min()),
        )

    @classmethod
    def from_stats(cls, stats: MemSystemStats) -> "LatencyDistribution":
        """Build from a run's stats object (capture must be enabled)."""
        if stats.demand_latency_samples is None:
            raise ValueError("latency capture was not enabled for this run")
        return cls.from_samples_ps(stats.demand_latency_samples)

    @property
    def queueing_tail_ns(self) -> float:
        """p99 minus p50 — a proxy for queueing-induced spread."""
        return self.p99_ns - self.p50_ns

    def format(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.count} mean={self.mean_ns:.1f}ns "
            f"p50={self.p50_ns:.1f} p90={self.p90_ns:.1f} "
            f"p99={self.p99_ns:.1f} max={self.max_ns:.1f}"
        )


def histogram_ns(
    samples_ps: Sequence[int], bucket_ns: float = 15.0, max_ns: float = 300.0
) -> Dict[str, int]:
    """Fixed-width latency histogram with an overflow bucket.

    Bucket labels are "lo-hi" ranges in ns; the last is "300+" style.
    """
    if bucket_ns <= 0 or max_ns <= 0:
        raise ValueError("bucket_ns and max_ns must be positive")
    edges: List[float] = []
    edge = 0.0
    while edge < max_ns:
        edges.append(edge)
        edge += bucket_ns
    counts: Dict[str, int] = {
        f"{int(lo)}-{int(lo + bucket_ns)}": 0 for lo in edges
    }
    overflow_label = f"{int(max_ns)}+"
    counts[overflow_label] = 0
    for sample in samples_ps:
        ns_value = sample / 1000.0
        if ns_value >= max_ns:
            counts[overflow_label] += 1
        else:
            bucket = int(ns_value // bucket_ns) * bucket_ns
            counts[f"{int(bucket)}-{int(bucket + bucket_ns)}"] += 1
    return counts
