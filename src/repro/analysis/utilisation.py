"""Channel-utilisation analysis.

Section 5.2's bandwidth-utilisation argument, measured directly: how busy
each link/bus actually was over a run's active window, against the data
the run moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.stats.collector import MemSystemStats
from repro.stats.metrics import utilized_bandwidth_gbs


@dataclass(frozen=True)
class ChannelUtilisation:
    """Busy fraction of one named bus/link over the run's active window."""

    name: str
    busy_fraction: float


def channel_utilisation_report(stats: MemSystemStats) -> List[ChannelUtilisation]:
    """Per-bus busy fractions, sorted busiest first."""
    elapsed = stats.elapsed_ps
    if elapsed <= 0:
        return []
    rows = [
        ChannelUtilisation(name=name, busy_fraction=min(1.0, busy / elapsed))
        for name, busy in stats.per_channel_busy_ps.items()
    ]
    return sorted(rows, key=lambda r: r.busy_fraction, reverse=True)


def utilisation_summary(stats: MemSystemStats) -> Dict[str, float]:
    """Aggregate view: bandwidth moved and mean link occupancy."""
    report = channel_utilisation_report(stats)
    mean_busy = (
        sum(r.busy_fraction for r in report) / len(report) if report else 0.0
    )
    return {
        "utilized_bandwidth_gbs": utilized_bandwidth_gbs(stats),
        "mean_link_busy_fraction": mean_busy,
        "peak_link_busy_fraction": report[0].busy_fraction if report else 0.0,
        "links_tracked": float(len(report)),
    }
