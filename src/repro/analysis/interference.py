"""Multiprogrammed interference analysis.

The SMT-speedup metric (Section 4.2) sums per-program slowdowns but hides
*who* pays for the sharing.  This module breaks a multi-core run down by
core: per-program memory latency, relative slowdown against a solo
reference, and a min/max fairness ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.system import SimulationResult


@dataclass(frozen=True)
class CoreInterference:
    """One core's view of a shared memory system."""

    core_id: int
    program: str
    ipc: float
    demand_reads: int
    avg_latency_ns: float
    relative_progress: Optional[float]  # IPC / solo IPC, if reference given
    avg_queue_delay_ns: float = 0.0  # schedulable -> issue share of latency


def per_core_breakdown(
    result: SimulationResult,
    reference_ipcs: Optional[Dict[str, float]] = None,
) -> List[CoreInterference]:
    """Per-core latency/progress rows for a finished run."""
    rows: List[CoreInterference] = []
    for core_id, (program, ipc) in enumerate(
        zip(result.programs, result.core_ipcs)
    ):
        entry = result.mem.per_core_reads.get(core_id, [0, 0, 0])
        reads, latency_sum = entry[0], entry[1]
        queue_sum = entry[2] if len(entry) > 2 else 0
        avg_latency = latency_sum / reads / 1000.0 if reads else 0.0
        avg_queue = queue_sum / reads / 1000.0 if reads else 0.0
        relative = None
        if reference_ipcs and program in reference_ipcs:
            solo = reference_ipcs[program]
            relative = ipc / solo if solo > 0 else None
        rows.append(
            CoreInterference(
                core_id=core_id,
                program=program,
                ipc=ipc,
                demand_reads=reads,
                avg_latency_ns=avg_latency,
                relative_progress=relative,
                avg_queue_delay_ns=avg_queue,
            )
        )
    return rows


def fairness_ratio(
    result: SimulationResult, reference_ipcs: Dict[str, float]
) -> float:
    """min/max of per-core relative progress — 1.0 is perfectly fair.

    The denominator matters: a mix where one program keeps 95 % of its
    solo IPC while another keeps 40 % shares badly even if the SMT speedup
    looks healthy.
    """
    rows = per_core_breakdown(result, reference_ipcs)
    progresses = [r.relative_progress for r in rows if r.relative_progress]
    if not progresses:
        raise ValueError("no reference IPCs matched the run's programs")
    return min(progresses) / max(progresses)
