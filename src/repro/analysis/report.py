"""Human-readable run reports (used by the CLI and the examples)."""

from __future__ import annotations

from typing import List, Optional

from repro.power.energy import (
    CommandEnergyModel,
    relative_dynamic_power_from_commands,
)
from repro.stats import metrics
from repro.system import SimulationResult


def _energy_model_for(device: str) -> CommandEnergyModel:
    """Per-command energy weights of the run's device generation.

    Unknown names fall back to the paper's DDR2 calibration so reports
    on results from older serialized configs still render.
    """
    from repro.dram.devices import DEVICE_PRESETS

    spec = DEVICE_PRESETS.get(device)
    return spec.energy if spec is not None else CommandEnergyModel()


def run_report(
    result: SimulationResult, baseline: Optional[SimulationResult] = None
) -> str:
    """Multi-line summary of one simulation run.

    With ``baseline`` given (the paper's no-prefetch reference run), a
    relative-dynamic-power line is added, computed from the per-command
    energy accountant (Figure 13's basis).
    """
    lines: List[str] = []
    cfg = result.config
    memory = cfg.memory
    lines.append(
        f"system: {memory.kind.value}, {memory.logic_channels} logic channels "
        f"({memory.physical_channels} physical), {memory.dimms_per_channel} "
        f"DIMMs/channel, {memory.data_rate_mts} MT/s"
    )
    prefetch = memory.prefetch
    if prefetch.enabled:
        assoc = prefetch.associativity.name.lower()
        lines.append(
            f"AMB prefetching: K={prefetch.region_cachelines}, "
            f"{prefetch.cache_entries} entries/AMB, {assoc} associativity, "
            f"{prefetch.replacement.value} replacement"
        )
    else:
        lines.append("AMB prefetching: off")
    lines.append(
        f"workload: {result.programs} "
        f"({cfg.instructions_per_core} instructions/core, seed {cfg.seed})"
    )
    lines.append(f"simulated time: {result.elapsed_ps / 1e6:.2f} us")
    lines.append("")
    lines.append(
        f"{'core':>4} {'program':<10} {'insts':>9} {'IPC':>7} "
        f"{'reads':>7} {'avg lat':>9} {'queueing':>9}"
    )
    per_core = result.mem.per_core_reads
    for idx, (program, insts, ipc) in enumerate(
        zip(result.programs, result.core_instructions, result.core_ipcs)
    ):
        entry = per_core.get(idx, [0, 0, 0])
        reads, latency_sum = entry[0], entry[1]
        queue_sum = entry[2] if len(entry) > 2 else 0
        avg_lat = f"{latency_sum / reads / 1000:.1f}ns" if reads else "-"
        avg_queue = f"{queue_sum / reads / 1000:.1f}ns" if reads else "-"
        lines.append(
            f"{idx:>4} {program:<10} {insts:>9} {ipc:>7.3f} "
            f"{reads:>7} {avg_lat:>9} {avg_queue:>9}"
        )
    lines.append("")
    mem = result.mem
    lines.append(
        f"memory: {mem.demand_reads} demand reads, "
        f"{mem.sw_prefetch_reads} sw-prefetch reads, {mem.writes} writes"
    )
    lines.append(
        f"  avg demand latency {result.avg_read_latency_ns:.1f} ns "
        f"(queueing {metrics.average_queue_delay_ns(mem):.1f} ns), "
        f"utilised bandwidth {result.utilized_bandwidth_gbs:.2f} GB/s"
    )
    all_reads = mem.total_reads
    if all_reads:
        lines.append(
            f"  avg latency over all reads incl. sw-prefetch "
            f"{mem.read_latency_sum_ps / all_reads / 1000:.1f} ns"
        )
    lines.append(
        f"  DRAM ops: {mem.activates} ACT/PRE pairs, "
        f"{mem.column_accesses} column accesses "
        f"({mem.column_reads} RD, {mem.column_writes} WR), "
        f"{mem.refreshes} refreshes"
    )
    if mem.faw_stalls:
        lines.append(
            f"  tFAW: {mem.faw_stalls} delayed ACTs, "
            f"{mem.faw_stall_ps / 1000:.1f} ns total stall"
        )
    energy_units = _energy_model_for(memory.device).energy_of(mem)
    lines.append(f"  dynamic energy: {energy_units:.0f} units (per-command model)")
    if baseline is not None:
        rel = relative_dynamic_power_from_commands(mem, baseline.mem)
        lines.append(f"  relative dynamic power vs baseline: {rel:.3f}")
    if mem.idle_gaps:
        span = max(result.elapsed_ps - result.warmup_time_ps, 1)
        lines.append(
            f"  residency: idle {mem.idle_ps / span:.1%}, "
            f"power-down {mem.powerdown_ps / span:.1%} "
            f"({mem.idle_gaps} idle gaps)"
        )
    row_refs = mem.row_hits + mem.row_misses
    if row_refs:
        lines.append(
            f"  row buffer: {mem.row_hits} hits, {mem.row_misses} misses "
            f"({mem.row_hits / row_refs:.1%} hit rate)"
        )
    if prefetch.enabled:
        lines.append(
            f"  AMB cache: coverage {result.prefetch_coverage:.1%}, "
            f"efficiency {result.prefetch_efficiency:.1%}, "
            f"{mem.prefetched_lines} lines prefetched"
        )
    if mem.pf_issued:
        # Lifecycle taxonomy (repro.prefetch): every issued line lands in
        # exactly one terminal bucket; the conservation identity is the
        # tracker's hard invariant, so the sum line always reconciles.
        lines.append(
            f"  prefetch lifecycle: {mem.pf_issued} issued = "
            f"{mem.pf_used} used + {mem.pf_late_unused} late + "
            f"{mem.pf_evicted_unused} evicted + "
            f"{mem.pf_invalidated} invalidated + "
            f"{mem.pf_resident_at_end} still resident"
        )
        lines.append(
            f"    accuracy {metrics.prefetch_accuracy(mem):.1%}, "
            f"coverage {metrics.lifecycle_coverage(mem):.1%}, "
            f"pollution {metrics.prefetch_pollution(mem):.1%}, "
            f"timeliness {metrics.prefetch_timeliness(mem):.1%}"
        )
    if mem.pf_table_lookups:
        lines.append(
            f"  prefetch tag store: {mem.pf_table_lookups} lookups "
            f"({mem.pf_table_hits} hits), {mem.pf_table_inserts} inserts, "
            f"{mem.pf_table_evictions} evictions, "
            f"{mem.pf_table_invalidations} invalidations"
        )
    if cfg.faults.enabled:
        lines.append(
            f"  faults: {mem.faults_injected} injected, "
            f"{mem.faults_corrupted} corrupted transfers "
            f"({mem.faults_retried_ok} retried ok, {mem.faults_dropped} "
            f"dropped), {mem.amb_parity_errors} parity errors, "
            f"{mem.fault_retry_latency_ps / 1000:.1f} ns retry latency, "
            f"{mem.fault_degraded_entries} degraded-mode entries"
        )
    if result.timeline is not None:
        from repro.timeline.report import timeline_report

        lines.append("")
        lines.append(timeline_report(result.timeline))
    return "\n".join(lines)
