"""Seeded fault injection for the FB-DIMM link layer (Issue 4).

Public surface:

* :class:`~repro.faults.injector.FaultInjector` — one deterministic
  decision stream per channel;
* :class:`~repro.faults.retry.ChannelFaults` — the controller-side CRC
  retry/replay state machine with degraded-mode tracking;
* :func:`~repro.faults.sweep.fault_sweep` — error-rate sweep driver used
  by the ``repro faults`` CLI subcommand and the reliability tests.

Everything here is inert unless ``SystemConfig.faults.enabled`` is set;
a disabled config is pinned bit-identical to the fault-free simulator by
``tests/test_faults.py``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.retry import NB_LINE, SB_CMD, SB_DATA, ChannelFaults
from repro.faults.sweep import FaultSweepPoint, fault_sweep

__all__ = [
    "FaultInjector",
    "ChannelFaults",
    "FaultSweepPoint",
    "fault_sweep",
    "SB_CMD",
    "SB_DATA",
    "NB_LINE",
]
