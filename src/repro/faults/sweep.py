"""Error-rate sweep: how much performance does link noise cost?

Drives :func:`repro.system.run_system` across a list of frame error
rates and reports the IPC / latency degradation curve relative to a
fault-free baseline.  Used by ``python -m repro faults`` and by the
reliability tests; points fan out across worker processes through
:func:`repro.experiments.parallel.execute_runs`, so a sweep is exactly
as deterministic as its individual runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.config import FaultConfig, SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: repro.system imports the controller, which imports repro.faults)
    from repro.stats.collector import MemSystemStats
    from repro.system import SimulationResult


@dataclass(frozen=True)
class FaultSweepPoint:
    """One sweep point: a (error_rate, run outcome) pair plus deltas.

    Attributes:
        error_rate: Frame error probability of this run (per transfer
            attempt); -1.0 marks the fault-free baseline row.
        sum_ipc: Sum of per-core IPCs.
        ipc_delta_pct: IPC change vs the baseline, in percent (<= 0 when
            faults hurt).
        avg_read_latency_ns: Mean demand-read latency.
        retry_latency_ns: Total link-slot latency added by replays.
        result: The full :class:`~repro.system.SimulationResult`.
    """

    error_rate: float
    sum_ipc: float
    ipc_delta_pct: float
    avg_read_latency_ns: float
    retry_latency_ns: float
    result: "SimulationResult"

    @property
    def mem(self) -> "MemSystemStats":
        return self.result.mem


def _faulted(config: SystemConfig, rate: float, bitflip: float) -> SystemConfig:
    return config.with_faults(
        enabled=True, error_rate=rate, amb_bitflip_rate=bitflip
    )


def fault_sweep(
    config: SystemConfig,
    programs: Sequence[str],
    rates: Sequence[float],
    amb_bitflip_rate: Optional[float] = None,
    jobs: int = 1,
) -> List[FaultSweepPoint]:
    """Run ``programs`` at every error rate and the fault-free baseline.

    Returns one point per entry of ``rates``, preceded by the baseline
    point (``error_rate == -1.0``, faults disabled entirely).  When
    ``amb_bitflip_rate`` is None every faulted run reuses its link error
    rate for the AMB-cache bit-flip probability.
    """
    from repro.experiments.parallel import execute_runs

    if not rates:
        raise ValueError("fault_sweep needs at least one error rate")
    baseline_config = replace(config, faults=FaultConfig())
    pairs = [(baseline_config, tuple(programs))]
    for rate in rates:
        bitflip = rate if amb_bitflip_rate is None else amb_bitflip_rate
        pairs.append((_faulted(config, rate, bitflip), tuple(programs)))
    results = execute_runs(pairs, jobs=jobs)

    baseline = results[0]
    baseline_ipc = sum(baseline.core_ipcs)
    points = [
        FaultSweepPoint(
            error_rate=-1.0,
            sum_ipc=baseline_ipc,
            ipc_delta_pct=0.0,
            avg_read_latency_ns=baseline.avg_read_latency_ns,
            retry_latency_ns=0.0,
            result=baseline,
        )
    ]
    for rate, result in zip(rates, results[1:]):
        sum_ipc = sum(result.core_ipcs)
        delta = (
            (sum_ipc - baseline_ipc) / baseline_ipc * 100.0
            if baseline_ipc
            else 0.0
        )
        points.append(
            FaultSweepPoint(
                error_rate=rate,
                sum_ipc=sum_ipc,
                ipc_delta_pct=delta,
                avg_read_latency_ns=result.avg_read_latency_ns,
                retry_latency_ns=result.mem.fault_retry_latency_ps / 1000.0,
                result=result,
            )
        )
    return points


def format_sweep(points: Sequence[FaultSweepPoint]) -> str:
    """Render sweep points as the ``repro faults`` CLI table."""
    header = (
        f"{'error rate':>10} {'sum IPC':>8} {'dIPC':>7} {'latency':>9} "
        f"{'retry ns':>9} {'corrupt':>8} {'retried':>8} {'dropped':>8} "
        f"{'parity':>7} {'degr':>5}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        mem = point.mem
        label = "off" if point.error_rate < 0 else f"{point.error_rate:.1e}"
        lines.append(
            f"{label:>10} {point.sum_ipc:>8.3f} {point.ipc_delta_pct:>6.2f}% "
            f"{point.avg_read_latency_ns:>7.1f}ns {point.retry_latency_ns:>9.1f} "
            f"{mem.faults_corrupted:>8} {mem.faults_retried_ok:>8} "
            f"{mem.faults_dropped:>8} {mem.amb_parity_errors:>7} "
            f"{mem.fault_degraded_entries:>5}"
        )
    return "\n".join(lines)
