"""Controller-side CRC retry/replay engine for one FB-DIMM channel.

Real FB-DIMM controllers detect corrupted frames by CRC and replay the
transfer; persistent failures trigger a fast link reset.  This module is
the timing model of that state machine:

* every transfer attempt (southbound command, southbound write-data
  stream, northbound line) draws one corruption decision from the
  channel's :class:`~repro.faults.injector.FaultInjector`;
* a corrupted attempt is replayed after an exponential backoff measured
  in frame slots (``backoff_frames * 2**(attempt-1)``), booking real
  frames on the link — retries consume bandwidth exactly like first
  transmissions;
* after ``max_retries`` corrupted replays the transfer is counted as
  *dropped* and one final recovery replay (modelling the post-reset
  retransmission, attempt ``max_retries + 1``) completes it — no request
  is ever lost silently, which is the accounting identity the fault
  tests pin: ``faults_corrupted == faults_retried_ok + faults_dropped``;
* ``degraded_threshold`` consecutive corrupted transfers put the channel
  in degraded mode: the issue engine stops AMB prefetching (hits in a
  flaky AMB cache are not trustworthy) until the end of the run.

All counters land directly in the shared
:class:`~repro.stats.collector.MemSystemStats`, so warm-up discard and
the metrics registry see fault activity like any other completion-side
counter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.config import FaultConfig
from repro.faults.injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stats.collector import MemSystemStats

#: Transfer kinds, matching the checker's frame-event vocabulary.
SB_CMD = "SB_CMD"
SB_DATA = "SB_DATA"
NB_LINE = "NB_LINE"

#: ``reserve(earliest, attempt) -> (slot_start, slot_end)`` — books the
#: replay's frames on the link and journals the attempt number.
ReserveFn = Callable[[int, int], Tuple[int, int]]


class ChannelFaults:
    """Fault-injection state of one physical channel.

    The channel controller owns one instance (when ``FaultConfig.enabled``)
    and shares it with its :class:`~repro.channel.fbdimm_link.FbdimmLinks`
    (link CRC retries) and its AMBs (cache parity).  ``on_retry`` is an
    optional hook ``(kind, time_ps, attempt)`` the controller wires to the
    telemetry tracer so retry episodes show up as request phases.
    """

    def __init__(
        self,
        config: FaultConfig,
        frame_ps: int,
        channel_id: int,
        stats: "MemSystemStats",
    ) -> None:
        self.config = config
        self.frame_ps = frame_ps
        self.channel_id = channel_id
        self.stats = stats
        self.injector = FaultInjector(config, channel_id)
        self.degraded = False
        self._streak = 0  # consecutive corrupted transfers
        self.on_retry: Optional[Callable[[str, int, int], None]] = None

    # -- retry state machine ------------------------------------------------

    def backoff_ps(self, attempt: int) -> int:
        """Replay backoff before attempt ``attempt`` (1-based), in ps."""
        if attempt < 1:
            raise ValueError("replay attempts are 1-based")
        return self.config.backoff_frames * self.frame_ps * (1 << (attempt - 1))

    def transfer(
        self, kind: str, first: Tuple[int, int], reserve: ReserveFn
    ) -> Tuple[int, int]:
        """Run one transfer through the CRC/retry state machine.

        ``first`` is the already-booked ``(start, end)`` of attempt 0;
        ``reserve`` books one replay.  Returns the ``(start, end)`` of the
        attempt that finally delivered the data.
        """
        if not self.injector.transfer_corrupted():
            self._streak = 0
            return first
        start, end = first
        first_end = end
        corrupt_attempts = 1
        attempt = 1
        dropped = False
        while True:
            if attempt > self.config.max_retries:
                # Retry budget exhausted: count the drop, then complete via
                # the post-reset recovery replay so no request is lost.
                dropped = True
                start, end = reserve(end + self.backoff_ps(attempt), attempt)
                self._note_retry(kind, start, attempt)
                break
            start, end = reserve(end + self.backoff_ps(attempt), attempt)
            self._note_retry(kind, start, attempt)
            if not self.injector.transfer_corrupted():
                break
            corrupt_attempts += 1
            attempt += 1
        stats = self.stats
        stats.faults_injected += corrupt_attempts
        stats.faults_corrupted += 1
        if dropped:
            stats.faults_dropped += 1
        else:
            stats.faults_retried_ok += 1
        stats.fault_retry_latency_ps += end - first_end
        self._note_episode()
        return start, end

    def _note_retry(self, kind: str, time_ps: int, attempt: int) -> None:
        if self.on_retry is not None:
            self.on_retry(kind, time_ps, attempt)

    def _note_episode(self) -> None:
        self._streak += 1
        threshold = self.config.degraded_threshold
        if threshold and not self.degraded and self._streak >= threshold:
            self.degraded = True
            self.stats.fault_degraded_entries += 1

    # -- AMB cache parity ---------------------------------------------------

    def cached_line_flipped(self) -> bool:
        """Parity probe for one AMB-cache hit; counts detected flips."""
        if not self.injector.cached_line_flipped():
            return False
        self.stats.amb_parity_errors += 1
        return True
