"""Seeded, deterministic fault decisions for one FB-DIMM channel.

One :class:`FaultInjector` owns one ``random.Random`` stream, seeded from
``(FaultConfig.seed, channel_id)`` only.  Every fault decision — link
transfer corruption, AMB-cache bit flips — consumes exactly one draw, in
simulation order, so a given (config, workload) pair replays the same
fault pattern on every run and on every machine.

With ``error_rate=0`` the draws still happen but no decision ever fires,
which is what makes an enabled-but-zero-rate run bit-identical to a run
with faults disabled (the differential test in ``tests/test_faults.py``
pins this).
"""

from __future__ import annotations

import random

from repro.config import FaultConfig

#: Multipliers folding (seed, channel) into one 64-bit stream seed; both
#: prime, so adjacent channels land far apart in seed space.
_SEED_MIX_A = 0x9E3779B97F4A7C15
_SEED_MIX_B = 0x100000001B3


class FaultInjector:
    """The channel's fault oracle: one seeded decision stream.

    Attributes:
        decisions: Total draws consumed (diagnostics; equals the number of
            transfer attempts plus AMB-cache hit probes on this channel).
    """

    def __init__(self, config: FaultConfig, channel_id: int = 0) -> None:
        self.config = config
        self.channel_id = channel_id
        stream_seed = (
            config.seed * _SEED_MIX_A + (channel_id + 1) * _SEED_MIX_B
        ) & (1 << 64) - 1
        self._rng = random.Random(stream_seed)
        self.decisions = 0

    def transfer_corrupted(self) -> bool:
        """Does this link transfer attempt arrive with a bad CRC?"""
        self.decisions += 1
        return self._rng.random() < self.config.error_rate

    def cached_line_flipped(self) -> bool:
        """Has this resident AMB-cache line suffered a bit flip?

        Drawn once per cache hit (not per stored line), modelling the
        accumulated upset probability between fill and use; parity at the
        AMB detects the flip, so a flipped hit becomes a counted miss.
        """
        self.decisions += 1
        return self._rng.random() < self.config.amb_bitflip_rate

    def corrupt_frame(self, raw: bytes) -> bytes:
        """Flip one seeded bit of a packed frame image.

        The CRC in :mod:`repro.channel.frames` detects every single-bit
        flip; the fault tests use this to validate that the probabilistic
        corruption the timing model injects corresponds to a detectable
        wire-level event.
        """
        if not raw:
            raise ValueError("cannot corrupt an empty frame")
        self.decisions += 1
        bit = self._rng.randrange(8 * len(raw))
        flipped = bytearray(raw)
        flipped[bit // 8] ^= 1 << (bit % 8)
        return bytes(flipped)
