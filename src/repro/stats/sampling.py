"""Time-series sampling of memory-system state.

The paper's analysis sections reason about queue depths, bank conflicts
and channel utilisation over time; this module provides a light-weight
periodic sampler that any run can attach.  Samples are plain dataclasses
so the analysis package can aggregate them without touching simulator
internals after the run.

A sampler's lifetime is bounded three ways: it stops at ``max_samples``,
at ``max_duration_ps`` past its attach point (when set), and immediately
on :meth:`QueueSampler.detach` — the one already-scheduled tick then
fires as a no-op instead of re-arming, so a detached sampler never keeps
a finished run's event queue alive.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.engine.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import MemoryController
    from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class Sample:
    """One snapshot of the memory subsystem."""

    time_ps: int
    queued_requests: int  # waiting in channel queues
    inflight_reads: int
    inflight_writes: int
    backlog: int  # parked behind the 64-entry buffer


@dataclass
class QueueSampler:
    """Samples a controller's queue state at a fixed period.

    Attach before the run::

        sampler = QueueSampler(period_ps=ns(100))
        sampler.attach(system.sim, system.controller)
        result = system.run()
        print(sampler.mean_queue_depth())

    Args:
        period_ps: Sampling period.
        max_samples: Hard cap on recorded samples.
        max_duration_ps: When set, sampling stops this long after attach
            even if ``max_samples`` was never reached.
    """

    period_ps: int = 100_000  # 100 ns
    samples: List[Sample] = field(default_factory=list)
    max_samples: int = 100_000
    max_duration_ps: Optional[int] = None

    def __post_init__(self) -> None:
        self._active = False
        self._deadline_ps: Optional[int] = None
        #: Incremented on every attach; each tick chain captures its own
        #: generation, so a stale tick left over from a detached chain can
        #: never resurrect after a re-attach (it would double the cadence).
        self._generation = 0

    @property
    def attached(self) -> bool:
        """True while a future tick will record another sample."""
        return self._active

    def attach(self, sim: Simulator, controller: "MemoryController") -> "QueueSampler":
        """Begin sampling; stops itself at its sample/duration bounds."""
        if self.period_ps <= 0:
            raise ValueError("sampling period must be positive")
        if self._active:
            raise RuntimeError("sampler is already attached")
        self._active = True
        self._generation += 1
        generation = self._generation
        if self.max_duration_ps is not None:
            self._deadline_ps = sim.now + self.max_duration_ps

        def tick() -> None:
            if not self._active or self._generation != generation:
                return  # detached or superseded: the pending tick is a no-op
            if self._deadline_ps is not None and sim.now > self._deadline_ps:
                self._active = False
                return
            queued = sum(ch.queue_len() for ch in controller.channels)
            reads = sum(ch.inflight_reads for ch in controller.channels)
            writes = sum(ch.inflight_writes for ch in controller.channels)
            self.samples.append(
                Sample(
                    time_ps=sim.now,
                    queued_requests=queued,
                    inflight_reads=reads,
                    inflight_writes=writes,
                    backlog=len(controller.backlog),
                )
            )
            if len(self.samples) >= self.max_samples:
                self._active = False
                return
            sim.schedule(self.period_ps, tick)

        sim.schedule(self.period_ps, tick)
        return self

    def detach(self) -> None:
        """Stop sampling now; already-recorded samples stay available.

        Safe to call repeatedly and before any attach — a detached (or
        never-attached) sampler treats further detaches as no-ops, and a
        later :meth:`attach` starts a fresh tick chain whose cadence is
        unaffected by the chain this call ended.
        """
        self._active = False

    # -- aggregates -----------------------------------------------------

    def mean_queue_depth(self) -> float:
        """Average number of requests waiting in channel queues."""
        if not self.samples:
            return 0.0
        return sum(s.queued_requests for s in self.samples) / len(self.samples)

    def peak_queue_depth(self) -> int:
        """Worst-case sampled queue depth."""
        if not self.samples:
            return 0
        return max(s.queued_requests for s in self.samples)

    def mean_inflight(self) -> float:
        """Average concurrently issued transactions (reads + writes)."""
        if not self.samples:
            return 0.0
        total = sum(s.inflight_reads + s.inflight_writes for s in self.samples)
        return total / len(self.samples)

    def backlog_fraction(self) -> float:
        """Fraction of samples where the 64-entry buffer was overflowing."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.backlog > 0) / len(self.samples)

    # -- export ---------------------------------------------------------

    def to_records(self) -> List[Dict[str, object]]:
        """JSONL-ready dicts, one per sample, for the telemetry capture."""
        return [asdict(s) for s in self.samples]

    def observe_into(self, registry: "MetricsRegistry") -> None:
        """Fold the sample series into histograms on ``registry``.

        Registers ``sample.queue_depth``, ``sample.inflight`` and
        ``sample.backlog`` so queue-depth percentiles travel with the
        rest of the metrics snapshot.
        """
        depth = registry.histogram(
            "sample.queue_depth", "sampled channel-queue depth"
        )
        inflight = registry.histogram(
            "sample.inflight", "sampled in-flight transactions"
        )
        backlog = registry.histogram(
            "sample.backlog", "sampled admission-FIFO depth"
        )
        for sample in self.samples:
            depth.observe(sample.queued_requests)
            inflight.observe(sample.inflight_reads + sample.inflight_writes)
            backlog.observe(sample.backlog)
