"""Time-series sampling of memory-system state.

The paper's analysis sections reason about queue depths, bank conflicts
and channel utilisation over time; this module provides a light-weight
periodic sampler that any run can attach.  Samples are plain dataclasses
so the analysis package can aggregate them without touching simulator
internals after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.engine.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import MemoryController


@dataclass(frozen=True)
class Sample:
    """One snapshot of the memory subsystem."""

    time_ps: int
    queued_requests: int  # waiting in channel queues
    inflight_reads: int
    inflight_writes: int
    backlog: int  # parked behind the 64-entry buffer


@dataclass
class QueueSampler:
    """Samples a controller's queue state at a fixed period.

    Attach before the run::

        sampler = QueueSampler(period_ps=ns(100))
        sampler.attach(system.sim, system.controller)
        result = system.run()
        print(sampler.mean_queue_depth())
    """

    period_ps: int = 100_000  # 100 ns
    samples: List[Sample] = field(default_factory=list)
    max_samples: int = 100_000

    def attach(self, sim: Simulator, controller: "MemoryController") -> None:
        """Begin sampling; stops itself at ``max_samples``."""
        if self.period_ps <= 0:
            raise ValueError("sampling period must be positive")

        def tick() -> None:
            queued = sum(ch.queue_len() for ch in controller.channels)
            reads = sum(ch.inflight_reads for ch in controller.channels)
            writes = sum(ch.inflight_writes for ch in controller.channels)
            self.samples.append(
                Sample(
                    time_ps=sim.now,
                    queued_requests=queued,
                    inflight_reads=reads,
                    inflight_writes=writes,
                    backlog=len(controller.backlog),
                )
            )
            if len(self.samples) < self.max_samples:
                sim.schedule(self.period_ps, tick)

        sim.schedule(self.period_ps, tick)

    # -- aggregates -----------------------------------------------------

    def mean_queue_depth(self) -> float:
        """Average number of requests waiting in channel queues."""
        if not self.samples:
            return 0.0
        return sum(s.queued_requests for s in self.samples) / len(self.samples)

    def peak_queue_depth(self) -> int:
        """Worst-case sampled queue depth."""
        if not self.samples:
            return 0
        return max(s.queued_requests for s in self.samples)

    def mean_inflight(self) -> float:
        """Average concurrently issued transactions (reads + writes)."""
        if not self.samples:
            return 0.0
        total = sum(s.inflight_reads + s.inflight_writes for s in self.samples)
        return total / len(self.samples)

    def backlog_fraction(self) -> float:
        """Fraction of samples where the 64-entry buffer was overflowing."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.backlog > 0) / len(self.samples)
