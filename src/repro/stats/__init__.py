"""Measurement: raw counters during the run, derived metrics afterwards."""

from repro.stats.collector import MemSystemStats
from repro.stats.metrics import (
    prefetch_coverage,
    prefetch_efficiency,
    smt_speedup,
    utilized_bandwidth_gbs,
)

__all__ = [
    "MemSystemStats",
    "prefetch_coverage",
    "prefetch_efficiency",
    "smt_speedup",
    "utilized_bandwidth_gbs",
]
