"""Derived metrics: the quantities the paper's figures report."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stats.collector import MemSystemStats


def smt_speedup(
    core_ipcs: Sequence[float], reference_ipcs: Sequence[float]
) -> float:
    """SMT speedup (Snavely/Tullsen, Section 4.2).

    ``sum_i IPC_cmp[i] / IPC_single[i]`` where the reference is each
    program's IPC running alone (on the single-core DDR2 system for the
    paper's absolute figures).
    """
    if len(core_ipcs) != len(reference_ipcs):
        raise ValueError("need one reference IPC per core")
    if any(ref <= 0 for ref in reference_ipcs):
        raise ValueError("reference IPCs must be positive")
    return sum(ipc / ref for ipc, ref in zip(core_ipcs, reference_ipcs))


def average_read_latency_ns(stats: MemSystemStats) -> float:
    """Mean latency of demand reads, in nanoseconds."""
    if stats.demand_reads == 0:
        return 0.0
    return stats.demand_latency_sum_ps / stats.demand_reads / 1000.0


def average_queue_delay_ns(stats: MemSystemStats) -> float:
    """Mean time reads and writes waited before their first command."""
    total = stats.total_reads + stats.writes
    if total == 0:
        return 0.0
    return stats.queue_delay_sum_ps / total / 1000.0


def utilized_bandwidth_gbs(stats: MemSystemStats) -> float:
    """Data actually moved over the channels, in GB/s (Figures 5 and 10).

    Counts demanded read lines and write lines; prefetched lines that stay
    behind the AMB never cross the channel and never count.
    """
    if stats.elapsed_ps <= 0:
        return 0.0
    total_bytes = stats.bytes_read + stats.bytes_written
    return total_bytes / (stats.elapsed_ps / 1000.0)  # B/ns == GB/s


def prefetch_coverage(stats: MemSystemStats) -> float:
    """coverage = #prefetch_hit / #read (Section 5.2)."""
    if stats.total_reads == 0:
        return 0.0
    return stats.amb_hits / stats.total_reads


def prefetch_efficiency(stats: MemSystemStats) -> float:
    """efficiency = #prefetch_hit / #prefetch (Section 5.2)."""
    if stats.prefetched_lines == 0:
        return 0.0
    return stats.amb_hits / stats.prefetched_lines


def prefetch_accuracy(stats: MemSystemStats) -> float:
    """accuracy = used prefetches / issued prefetches.

    Fed by the lifecycle taxonomy (:mod:`repro.prefetch.lifecycle`); zero
    whenever lifecycle tracking is off.
    """
    if stats.pf_issued == 0:
        return 0.0
    return stats.pf_used / stats.pf_issued


def prefetch_pollution(stats: MemSystemStats) -> float:
    """pollution = prefetches evicted unused / issued prefetches."""
    if stats.pf_issued == 0:
        return 0.0
    return stats.pf_evicted_unused / stats.pf_issued


def prefetch_timeliness(stats: MemSystemStats) -> float:
    """timeliness = timely useful prefetches / all useful prefetches.

    A prefetch is *useful* when a demand wanted its line (``used`` or
    ``late_unused``) and *timely* when the line was already resident
    (``used``).  1.0 means every useful prefetch arrived in time.
    """
    useful = stats.pf_used + stats.pf_late_unused
    if useful == 0:
        return 0.0
    return stats.pf_used / useful


def lifecycle_coverage(stats: MemSystemStats) -> float:
    """coverage recomputed from the lifecycle path: pf_hits / #read.

    ``pf_hits`` is counted at read completion exactly like ``amb_hits``,
    so with lifecycle tracking on this reproduces
    :func:`prefetch_coverage` identically (pinned by a regression test on
    the fig08 experiment).
    """
    if stats.total_reads == 0:
        return 0.0
    return stats.pf_hits / stats.total_reads


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, for summarising normalised results."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain mean, the paper's summary for speedups and bandwidth."""
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)


def speedup_over(
    metric: Mapping[str, float], baseline: Mapping[str, float]
) -> "dict[str, float]":
    """Per-key ratio of two result tables (e.g. FBD-AP over FBD)."""
    missing = set(metric) ^ set(baseline)
    if missing:
        raise ValueError(f"mismatched workloads: {sorted(missing)}")
    return {key: metric[key] / baseline[key] for key in metric}
