"""Raw event counters accumulated while the memory system runs.

One :class:`MemSystemStats` instance is shared by every channel controller
of a system; the metrics module turns it into the paper's reported
quantities (average latency, utilised bandwidth, coverage, efficiency,
relative power).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MemSystemStats:
    """Counters for one simulated memory subsystem."""

    demand_reads: int = 0
    sw_prefetch_reads: int = 0
    writes: int = 0
    amb_hits: int = 0  # reads served from an AMB cache (incl. fill merges)
    prefetched_lines: int = 0  # lines written into AMB caches
    read_latency_sum_ps: int = 0  # demand + software-prefetch reads
    demand_latency_sum_ps: int = 0  # demand reads only
    queue_delay_sum_ps: int = 0  # time between schedulable and issue
    bytes_read: int = 0  # cachelines crossing the channel toward the CPU
    bytes_written: int = 0  # write data crossing the channel
    activates: int = 0  # ACT/PRE pairs at the DRAM devices
    column_accesses: int = 0  # RD/WR column commands at the DRAM devices
    column_reads: int = 0  # RD share of column_accesses (energy split)
    column_writes: int = 0  # WR share of column_accesses (energy split)
    refreshes: int = 0  # all-bank refreshes at the DRAM devices
    row_hits: int = 0
    row_misses: int = 0
    faw_stalls: int = 0  # ACTs delayed by the tFAW four-activate window
    faw_stall_ps: int = 0  # total delay those ACTs absorbed
    # -- idle/power-down residency (fed only when the timeline is on) ----
    idle_ps: int = 0  # whole-subsystem idle time (no request outstanding)
    powerdown_ps: int = 0  # idle time past the power-down entry threshold
    idle_gaps: int = 0  # closed idle gaps (entries into the idle state)
    # -- prefetch lifecycle taxonomy (repro.prefetch; fed only when
    # AmbPrefetchConfig.lifecycle is on, all zero otherwise) -------------
    pf_issued: int = 0  # prefetched-line instances booked by group fetches
    pf_used: int = 0  # instances hit by a demand read while resident
    pf_evicted_unused: int = 0  # instances replaced/displaced before any hit
    pf_late_unused: int = 0  # instances whose demand merged with the fill
    pf_invalidated: int = 0  # instances dropped by a write or parity flip
    pf_resident_at_end: int = 0  # instances still open at finalize
    pf_hits: int = 0  # completed reads served from a prefetch buffer
    # -- prefetch tag-store counters (same gate; device-side fold) -------
    pf_table_lookups: int = 0  # tag probes that counted a lookup
    pf_table_hits: int = 0  # tag hits incl. in-flight fill merges
    pf_table_inserts: int = 0  # lines installed into tag stores
    pf_table_evictions: int = 0  # lines replaced out of tag stores
    pf_table_invalidations: int = 0  # lines dropped by writes/parity
    # -- fault injection (repro.faults; all zero when faults are off) ----
    faults_injected: int = 0  # corrupted transfer attempts on the links
    faults_corrupted: int = 0  # transfers that saw >= 1 corruption
    faults_retried_ok: int = 0  # corrupted transfers recovered by a replay
    faults_dropped: int = 0  # transfers that exhausted the retry budget
    fault_retry_latency_ps: int = 0  # link-slot latency added by replays
    fault_degraded_entries: int = 0  # channels that entered degraded mode
    amb_parity_errors: int = 0  # AMB-cache hits invalidated by parity
    per_channel_busy_ps: Dict[str, int] = field(default_factory=dict)
    first_activity_ps: int = -1
    last_activity_ps: int = 0
    #: Per-request latency capture for histogram analysis; None (off) by
    #: default because most sweeps only need the sums.
    demand_latency_samples: Optional[List[int]] = None
    #: Per-core demand-read counters:
    #: core id -> [reads, latency_sum_ps, queue_delay_sum_ps].
    #: Shows which program of a mix suffers the queueing (interference).
    per_core_reads: Dict[int, List[int]] = field(default_factory=dict)

    #: Late-added counters elided from the canonical encoding while zero,
    #: so results of configurations that cannot produce them (every DDR2
    #: run: tFAW is disabled there; every lifecycle-off run: the pf_*
    #: taxonomy) keep their pre-existing digests.
    ENCODE_OPTIONAL_FIELDS = frozenset({
        "faw_stalls", "faw_stall_ps",
        "pf_issued", "pf_used", "pf_evicted_unused", "pf_late_unused",
        "pf_invalidated", "pf_resident_at_end", "pf_hits",
        "pf_table_lookups", "pf_table_hits", "pf_table_inserts",
        "pf_table_evictions", "pf_table_invalidations",
    })

    def enable_latency_capture(self) -> None:
        """Record every demand read's latency (for repro.analysis)."""
        if self.demand_latency_samples is None:
            self.demand_latency_samples = []

    def reset_measurement(self) -> None:
        """Zero all completion-side counters (warm-up discard).

        Device-side counters (activates etc.) accumulate inside the banks
        and are baseline-subtracted by the controller instead.
        """
        self.demand_reads = 0
        self.sw_prefetch_reads = 0
        self.writes = 0
        self.amb_hits = 0
        self.pf_issued = 0
        self.pf_used = 0
        self.pf_evicted_unused = 0
        self.pf_late_unused = 0
        self.pf_invalidated = 0
        self.pf_resident_at_end = 0
        self.pf_hits = 0
        self.read_latency_sum_ps = 0
        self.demand_latency_sum_ps = 0
        self.queue_delay_sum_ps = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.faults_injected = 0
        self.faults_corrupted = 0
        self.faults_retried_ok = 0
        self.faults_dropped = 0
        self.fault_retry_latency_ps = 0
        self.fault_degraded_entries = 0
        self.amb_parity_errors = 0
        self.first_activity_ps = -1
        self.last_activity_ps = 0
        if self.demand_latency_samples is not None:
            self.demand_latency_samples = []
        self.per_core_reads = {}

    @property
    def total_reads(self) -> int:
        """Demand reads plus software-prefetch reads."""
        return self.demand_reads + self.sw_prefetch_reads

    def note_activity(self, time_ps: int) -> None:
        """Track the active window for bandwidth computation."""
        if self.first_activity_ps < 0:
            self.first_activity_ps = time_ps
        if time_ps > self.last_activity_ps:
            self.last_activity_ps = time_ps

    @property
    def elapsed_ps(self) -> int:
        """Length of the active window (0 when nothing happened)."""
        if self.first_activity_ps < 0:
            return 0
        return self.last_activity_ps - self.first_activity_ps

    def record_read_completion(
        self, latency_ps: int, queue_delay_ps: int, is_demand: bool, amb_hit: bool,
        line_bytes: int, core_id: int = -1,
    ) -> None:
        """Account one finished read transaction."""
        if is_demand:
            self.demand_reads += 1
            self.demand_latency_sum_ps += latency_ps
            if self.demand_latency_samples is not None:
                self.demand_latency_samples.append(latency_ps)
            if core_id >= 0:
                entry = self.per_core_reads.setdefault(core_id, [0, 0, 0])
                entry[0] += 1
                entry[1] += latency_ps
                entry[2] += queue_delay_ps
        else:
            self.sw_prefetch_reads += 1
        self.read_latency_sum_ps += latency_ps
        self.queue_delay_sum_ps += queue_delay_ps
        self.bytes_read += line_bytes
        if amb_hit:
            self.amb_hits += 1

    def record_write_completion(self, line_bytes: int) -> None:
        """Account one retired write."""
        self.writes += 1
        self.bytes_written += line_bytes
