"""Typed JSON round-tripping for the configuration/result dataclass tree.

The run cache and the parallel executor need :class:`~repro.config.SystemConfig`
and :class:`~repro.system.SimulationResult` to survive a trip through JSON with
*no* loss: the differential tests compare serialisations byte-for-byte, so the
encoding must be canonical (sorted keys, no whitespace) and the decoding must
restore exactly the values that went in.

The codec is driven entirely by the dataclass field types, so it needs no
per-class registration:

* dataclasses    -> JSON objects keyed by field name; a class may name
  late-added fields in an ``ENCODE_OPTIONAL_FIELDS`` class attribute and
  those are *elided while at their defaults*, so growing a config dataclass
  does not reshuffle the canonical text (and hence cache keys / conformance
  digests) of every value encoded before the field existed;
* enums          -> their ``name`` (values may collide, names cannot);
* lists/tuples   -> JSON arrays (restored to the hinted container type);
* dicts          -> JSON objects (non-string keys are restored from the hinted
  key type — JSON forces string keys);
* primitives     -> themselves (Python's float repr round-trips exactly).

Anything else is a hard :class:`TypeError` at encode time rather than a silent
lossy best-effort — a cache that stores an approximation poisons every later
read.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing
from typing import Any, Dict, Optional

__all__ = ["encode_value", "decode_value", "canonical_dumps"]


def encode_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-compatible types, recursively."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        optional = getattr(type(value), "ENCODE_OPTIONAL_FIELDS", ())
        return {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in optional or not _is_default(value, f)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    raise TypeError(
        f"cannot encode {type(value).__name__} value {value!r} for the cache"
    )


def decode_value(raw: Any, hint: Any) -> Any:
    """Rebuild a value of declared type ``hint`` from its encoded form."""
    if hint is Any or hint is None:
        return raw
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        return _decode_union(raw, hint)
    if isinstance(hint, type) and issubclass(hint, enum.Enum):
        return hint[raw]
    if dataclasses.is_dataclass(hint):
        return _decode_dataclass(raw, hint)
    if origin in (list, tuple) or hint in (list, tuple):
        return _decode_sequence(raw, hint, origin)
    if origin is dict or hint is dict:
        return _decode_mapping(raw, hint, origin)
    if hint is float and isinstance(raw, int) and not isinstance(raw, bool):
        return float(raw)
    return raw


def canonical_dumps(encoded: Any) -> str:
    """One canonical JSON text per value: sorted keys, no whitespace."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------


def _is_default(value: Any, f: "dataclasses.Field[Any]") -> bool:
    """True when field ``f`` of ``value`` still holds its declared default.

    Only fields with a default (or default factory) can ever be elided;
    ``_decode_dataclass`` restores the very same default for a missing key,
    so the round trip stays lossless.
    """
    current = getattr(value, f.name)
    if f.default is not dataclasses.MISSING:
        return bool(current == f.default)
    if f.default_factory is not dataclasses.MISSING:
        return bool(current == f.default_factory())
    return False


def _decode_union(raw: Any, hint: Any) -> Any:
    arms = [a for a in typing.get_args(hint) if a is not type(None)]
    if raw is None:
        return None
    if len(arms) == 1:
        return decode_value(raw, arms[0])
    # Heterogeneous unions don't occur in the config/result tree; passing
    # the raw value through keeps the codec total if one ever appears.
    return raw


def _decode_dataclass(raw: Any, hint: Any) -> Any:
    if not isinstance(raw, dict):
        raise TypeError(f"expected object for {hint.__name__}, got {raw!r}")
    hints = _field_hints(hint)
    kwargs = {
        f.name: decode_value(raw[f.name], hints.get(f.name, Any))
        for f in dataclasses.fields(hint)
        if f.name in raw
    }
    return hint(**kwargs)


def _decode_sequence(raw: Any, hint: Any, origin: Optional[type]) -> Any:
    container = origin or hint
    args = typing.get_args(hint)
    if container is tuple:
        if args and args[-1] is not Ellipsis and len(args) == len(raw):
            return tuple(
                decode_value(item, arg) for item, arg in zip(raw, args)
            )
        item_hint = args[0] if args else Any
        return tuple(decode_value(item, item_hint) for item in raw)
    item_hint = args[0] if args else Any
    return [decode_value(item, item_hint) for item in raw]


def _decode_mapping(raw: Any, hint: Any, origin: Optional[type]) -> Any:
    args = typing.get_args(hint)
    key_hint = args[0] if args else Any
    value_hint = args[1] if len(args) > 1 else Any
    return {
        _decode_key(key, key_hint): decode_value(item, value_hint)
        for key, item in raw.items()
    }


def _decode_key(key: str, hint: Any) -> Any:
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    return key


def _field_hints(cls: type) -> Dict[str, Any]:
    """Resolved type hints of a dataclass (PEP 563 strings included)."""
    return typing.get_type_hints(cls)
