"""Telemetry CLI: record, summarize and export memory-system traces.

Usage::

    python -m repro.trace record --workload 4C-1 --system fbd-ap -o run.jsonl
    python -m repro.trace summarize run.jsonl
    python -m repro.trace export run.jsonl -o run.trace.json
    python -m repro.trace export -o run.trace.json   # record + export in one

``record`` runs one simulation with a :class:`repro.telemetry.Tracer`
attached and writes the capture JSONL (request lifecycles, DRAM/frame
commands, metrics snapshot, optional queue samples and event-loop
profile).  ``export`` renders a capture as Chrome trace-event JSON —
open it in Perfetto or ``chrome://tracing`` — and schema-validates the
result; given no capture file it records one first using the same run
flags as ``record``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.telemetry import (
    TelemetryCapture,
    Tracer,
    build_capture,
    load_capture,
    save_capture,
    summarize_capture,
    validate_chrome_trace,
    write_chrome_trace,
)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    """Simulation knobs, matching ``python -m repro run``."""
    parser.add_argument("--workload", default="4C-1",
                        help="a program name or a Table 3 mix")
    parser.add_argument("--system", choices=("ddr2", "fbd", "fbd-ap"),
                        default="fbd-ap")
    parser.add_argument("--insts", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument("--no-sw-prefetch", action="store_true")
    parser.add_argument("--k", type=int, default=4,
                        help="region cachelines for fbd-ap")
    parser.add_argument("--entries", type=int, default=64)
    parser.add_argument("--assoc",
                        choices=("direct", "2way", "4way", "full"),
                        default="full")
    parser.add_argument("--max-requests", type=int, default=200_000,
                        help="request-trace recording bound")
    parser.add_argument("--profile", action="store_true",
                        help="also profile the event loop by callback site")
    parser.add_argument("--sample-ns", type=float, default=0.0,
                        help="sample queue depths every N ns (0 = off)")


def record_capture(args: argparse.Namespace) -> TelemetryCapture:
    """Run one traced simulation and assemble its capture."""
    from repro.__main__ import _build_config
    from repro.engine.profiler import EventLoopProfiler
    from repro.engine.simulator import ns
    from repro.stats.sampling import QueueSampler
    from repro.system import System
    from repro.workloads.multiprog import workload_programs

    programs = workload_programs(args.workload)
    config = _build_config(args, args.system)
    tracer = Tracer(max_requests=args.max_requests)
    machine = System(config, programs, tracer=tracer)
    profiler: Optional[EventLoopProfiler] = None
    if args.profile:
        profiler = EventLoopProfiler()
        machine.sim.profiler = profiler
    sampler: Optional[QueueSampler] = None
    if args.sample_ns > 0:
        sampler = QueueSampler(period_ps=ns(args.sample_ns))
        sampler.attach(machine.sim, machine.controller)
    result = machine.run()
    if sampler is not None:
        sampler.detach()
        sampler.observe_into(tracer.registry)
    return build_capture(
        result,
        tracer,
        check_events=machine.controller.collect_check_events(),
        samples=sampler.to_records() if sampler is not None else None,
        profile=(
            profiler.to_records() + profiler.stack_records()
            if profiler is not None else None
        ),
    )


def cmd_record(args: argparse.Namespace) -> int:
    capture = record_capture(args)
    records = save_capture(args.out, capture)
    print(
        f"wrote {args.out}: {records} records "
        f"({len(capture.requests)} request traces, "
        f"{len(capture.commands)} command events)"
    )
    return 0


def cmd_summarize(args: argparse.Namespace) -> int:
    capture = load_capture(args.capture)
    print(summarize_capture(capture, top_sites=args.top))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    capture = (load_capture(args.capture) if args.capture is not None
               else record_capture(args))
    doc = write_chrome_trace(args.out, capture)
    problems = validate_chrome_trace(doc)
    events = doc["traceEvents"]
    print(f"wrote {args.out}: {len(events)} trace events")  # type: ignore[arg-type]
    if problems:
        for problem in problems[:20]:
            print(f"  INVALID: {problem}", file=sys.stderr)
        print(f"{len(problems)} schema problem(s)", file=sys.stderr)
        return 1
    print("schema: OK (load it in Perfetto / chrome://tracing)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Record, summarize and export memory-system traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec_p = sub.add_parser("record", help="run one traced simulation")
    _add_run_args(rec_p)
    rec_p.add_argument("-o", "--out", default="trace-capture.jsonl",
                       help="capture JSONL path")
    rec_p.set_defaults(func=cmd_record)

    sum_p = sub.add_parser("summarize", help="digest of a capture file")
    sum_p.add_argument("capture", help="capture JSONL from 'record'")
    sum_p.add_argument("--top", type=int, default=10,
                       help="profiler sites to show")
    sum_p.set_defaults(func=cmd_summarize)

    exp_p = sub.add_parser(
        "export", help="capture (or fresh run) -> Chrome trace-event JSON"
    )
    exp_p.add_argument("capture", nargs="?", default=None,
                       help="capture JSONL; omitted = record one now")
    _add_run_args(exp_p)
    exp_p.add_argument("-o", "--out", default="trace.json",
                       help="Chrome trace JSON path")
    exp_p.set_defaults(func=cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        # Missing/garbage capture files and unwritable outputs fail
        # cleanly: 2 = usage/IO error, matching the repro.check CLI.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
