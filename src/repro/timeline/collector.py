"""The timeline collector: windowed counter snapshots on the sim clock.

The collector registers one periodic event with the simulator
(:meth:`~repro.engine.simulator.Simulator.schedule_every`) and, at each
tick, differences the current counter state against the previous
snapshot to produce one :class:`~repro.timeline.records.WindowRecord`.
Everything is driven by sim time, never wall time, so a timeline-enabled
run is exactly as deterministic as a plain one — the ticks merely add
events at fixed timestamps.

Conservation invariant: with no measurement reset, the field-wise sum of
all windows (plus the final partial window) equals the run's final
totals.  The zero-overhead guard tests in tests/test_timeline.py pin
both directions: timeline off -> bit-identical results, timeline on ->
unchanged simulation outcome plus a timeline whose sums reconcile.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import TimelineConfig
from repro.engine.simulator import Simulator
from repro.power.energy import EnergyAccountant
from repro.stats.collector import MemSystemStats
from repro.timeline.records import TimelineResult, WindowRecord

#: Completion-side counters snapshotted straight off MemSystemStats.
_STATS_KEYS = (
    "demand_reads", "sw_prefetch_reads", "writes", "amb_hits",
    "bytes_read", "bytes_written",
    "demand_latency_sum_ps", "queue_delay_sum_ps",
    "faults_retried_ok",
    "pf_issued", "pf_used", "pf_evicted_unused", "pf_late_unused",
    "pf_invalidated",
)

#: Device/residency counters read from the controller's live totals.
_DEVICE_KEYS = (
    "activates", "column_reads", "column_writes", "refreshes",
    "row_hits", "row_misses", "prefetched_lines",
    "idle_ps", "powerdown_ps",
)


def _percentile_ps(sorted_samples: List[int], p: float) -> int:
    """Nearest-rank percentile of pre-sorted integer samples."""
    if not sorted_samples:
        return 0
    rank = max(1, -(-len(sorted_samples) * int(p) // 100))  # ceil(n*p/100)
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class TimelineCollector:
    """Snapshots counter deltas every ``window_ps`` of sim time.

    The collector is deliberately decoupled from the concrete controller:
    it only needs two callables — one returning the live device/residency
    counter totals and one returning the current queue depth — so tests
    can drive it with stubs and exact synthetic schedules.
    """

    def __init__(
        self,
        sim: Simulator,
        stats: MemSystemStats,
        config: TimelineConfig,
        accountant: EnergyAccountant,
        device_counters: Callable[[], Dict[str, int]],
        queue_depth: Callable[[], int],
    ) -> None:
        if not config.enabled:
            raise ValueError("TimelineCollector requires timeline.enabled")
        self.sim = sim
        self.stats = stats
        self.config = config
        self.accountant = accountant
        self._device_counters = device_counters
        self._queue_depth = queue_depth
        self.windows: List[WindowRecord] = []
        self.resets = 0
        self.truncated = False
        self._started = False
        self._window_start = 0
        self._prev: Dict[str, int] = {}
        self._sample_offset = 0
        if config.capture_latency:
            stats.enable_latency_capture()

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Take the opening snapshot and arm the periodic tick."""
        if self._started:
            raise RuntimeError("a TimelineCollector starts exactly once")
        self._started = True
        self._window_start = self.sim.now
        self._prev = self._snapshot()
        self._sample_offset = self._sample_count()
        self.sim.schedule_every(self.config.window_ps, self._tick)

    def on_measurement_reset(self) -> None:
        """Warm-up discard: drop recorded windows, re-anchor deltas.

        Called by the controller *after* ``stats.reset_measurement()``,
        so the fresh snapshot reads the already-zeroed completion
        counters.  The tick cadence stays on its original grid, which
        makes the first post-reset window shorter than ``window_ps``
        unless the reset lands exactly on a boundary.
        """
        self.windows = []
        self.resets += 1
        self.truncated = False
        self._window_start = self.sim.now
        self._prev = self._snapshot()
        self._sample_offset = self._sample_count()

    def finalize(self, end_ps: int) -> TimelineResult:
        """Emit the final partial window (if any) and wrap up.

        A run rarely ends on a window boundary; whatever accumulated
        since the last tick becomes one short final window.  When the
        run ends *exactly* on a boundary the tick already emitted that
        window and ``end_ps == window start``, so nothing is added — a
        zero-length window is never recorded.
        """
        if end_ps > self._window_start and not self.truncated:
            self._emit(end_ps)
        return TimelineResult(
            window_ps=self.config.window_ps,
            windows=self.windows,
            resets=self.resets,
            truncated=self.truncated,
        )

    # ------------------------------------------------------------------

    def _tick(self) -> object:
        if len(self.windows) >= self.config.max_windows:
            self.truncated = True
            return False  # ends the periodic series
        self._emit(self.sim.now)
        return None

    def _sample_count(self) -> int:
        samples = self.stats.demand_latency_samples
        return len(samples) if samples is not None else 0

    def _snapshot(self) -> Dict[str, int]:
        snap = {key: getattr(self.stats, key) for key in _STATS_KEYS}
        device = self._device_counters()
        for key in _DEVICE_KEYS:
            snap[key] = device.get(key, 0)
        return snap

    def _emit(self, end_ps: int) -> None:
        now = self._snapshot()
        delta = {key: now[key] - self._prev[key] for key in now}
        duration_ps = end_ps - self._window_start

        p50 = p95 = p99 = lat_max = 0
        samples = self.stats.demand_latency_samples
        if samples is not None:
            fresh = sorted(samples[self._sample_offset:])
            self._sample_offset = len(samples)
            if fresh:
                p50 = _percentile_ps(fresh, 50)
                p95 = _percentile_ps(fresh, 95)
                p99 = _percentile_ps(fresh, 99)
                lat_max = fresh[-1]

        energy = self.accountant.interval_energy(
            activates=delta["activates"],
            column_reads=delta["column_reads"],
            column_writes=delta["column_writes"],
            refreshes=delta["refreshes"],
            interval_ps=duration_ps,
            powerdown_ps=delta["powerdown_ps"],
        )

        self.windows.append(WindowRecord(
            index=len(self.windows),
            start_ps=self._window_start,
            end_ps=end_ps,
            demand_reads=delta["demand_reads"],
            sw_prefetch_reads=delta["sw_prefetch_reads"],
            writes=delta["writes"],
            amb_hits=delta["amb_hits"],
            bytes_read=delta["bytes_read"],
            bytes_written=delta["bytes_written"],
            demand_latency_sum_ps=delta["demand_latency_sum_ps"],
            queue_delay_sum_ps=delta["queue_delay_sum_ps"],
            fault_retries=delta["faults_retried_ok"],
            latency_p50_ps=p50,
            latency_p95_ps=p95,
            latency_p99_ps=p99,
            latency_max_ps=lat_max,
            activates=delta["activates"],
            column_reads=delta["column_reads"],
            column_writes=delta["column_writes"],
            refreshes=delta["refreshes"],
            row_hits=delta["row_hits"],
            row_misses=delta["row_misses"],
            prefetched_lines=delta["prefetched_lines"],
            idle_ps=delta["idle_ps"],
            powerdown_ps=delta["powerdown_ps"],
            queue_depth=self._queue_depth(),
            energy_act_nj=energy.act_nj,
            energy_rd_nj=energy.rd_nj,
            energy_wr_nj=energy.wr_nj,
            energy_refresh_nj=energy.refresh_nj,
            energy_background_nj=energy.background_nj,
            pf_issued=delta["pf_issued"],
            pf_used=delta["pf_used"],
            pf_evicted_unused=delta["pf_evicted_unused"],
            pf_late_unused=delta["pf_late_unused"],
            pf_invalidated=delta["pf_invalidated"],
        ))
        self._prev = now
        self._window_start = end_ps
