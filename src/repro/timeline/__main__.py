"""``python -m repro.timeline`` entry point."""

import sys

from repro.timeline.cli import main

if __name__ == "__main__":
    sys.exit(main())
