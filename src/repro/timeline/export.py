"""Timeline persistence: JSONL, CSV, and structural validation.

The JSONL format is one header object followed by one ``window`` record
per line, encoded with the same canonical serializer the run cache uses,
so a timeline round-trips bit-identically:

    {"format": "repro-timeline", "version": 1, "window_ps": ..., ...}
    {"type": "window", "index": 0, ...}
    {"type": "window", "index": 1, ...}

CSV export flattens the same records (plus the derived rates) for
spreadsheet / pandas consumption.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.serialize import canonical_dumps, decode_value, encode_value
from repro.timeline.records import TimelineResult, WindowRecord

FORMAT_NAME = "repro-timeline"
FORMAT_VERSION = 1

#: Serialised WindowRecord columns, in CSV column order.  Kept explicit —
#: the counter-drift lint reconciles this tuple against the dataclass, so
#: adding a field to WindowRecord without exporting it fails the lint.
WINDOW_FIELDS = (
    "index", "start_ps", "end_ps",
    "demand_reads", "sw_prefetch_reads", "writes", "amb_hits",
    "bytes_read", "bytes_written",
    "demand_latency_sum_ps", "queue_delay_sum_ps", "fault_retries",
    "latency_p50_ps", "latency_p95_ps", "latency_p99_ps", "latency_max_ps",
    "activates", "column_reads", "column_writes", "refreshes",
    "row_hits", "row_misses", "prefetched_lines",
    "idle_ps", "powerdown_ps", "queue_depth",
    "energy_act_nj", "energy_rd_nj", "energy_wr_nj",
    "energy_refresh_nj", "energy_background_nj",
    "pf_issued", "pf_used", "pf_evicted_unused", "pf_late_unused",
    "pf_invalidated",
)

#: Derived per-window rates appended to the CSV after the raw columns.
DERIVED_FIELDS = (
    "duration_ps", "bandwidth_gbs", "avg_latency_ns", "row_hit_rate",
    "amb_hit_rate", "energy_total_nj", "avg_power_w", "powerdown_fraction",
)


def write_timeline_jsonl(
    timeline: TimelineResult,
    path: Union[str, Path],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write header + one line per window (canonical JSON)."""
    header: Dict[str, object] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "window_ps": timeline.window_ps,
        "resets": timeline.resets,
        "truncated": timeline.truncated,
        "num_windows": len(timeline.windows),
    }
    if meta:
        header["meta"] = meta
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(canonical_dumps(header) + "\n")
        for window in timeline.windows:
            record = {"type": "window"}
            record.update(encode_value(window))
            fh.write(canonical_dumps(record) + "\n")


def read_timeline_jsonl(
    path: Union[str, Path],
) -> Tuple[TimelineResult, Dict[str, object]]:
    """Inverse of :func:`write_timeline_jsonl`; returns (timeline, header)."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty timeline file")
    header = json.loads(lines[0])
    if header.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path}: not a {FORMAT_NAME} file (format={header.get('format')!r})"
        )
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {header.get('version')!r}"
        )
    windows: List[WindowRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        raw = json.loads(line)
        if raw.get("type") != "window":
            raise ValueError(f"{path}:{lineno}: unknown record type "
                             f"{raw.get('type')!r}")
        raw.pop("type")
        windows.append(decode_value(raw, WindowRecord))
    timeline = TimelineResult(
        window_ps=int(header.get("window_ps", 0)),
        windows=windows,
        resets=int(header.get("resets", 0)),
        truncated=bool(header.get("truncated", False)),
    )
    return timeline, header


def validate_timeline(timeline: TimelineResult) -> List[str]:
    """Structural checks; returns human-readable issues ([] when clean).

    Checked: contiguous indices, positive-duration non-overlapping
    windows, interior windows exactly ``window_ps`` long, and
    non-negative counters.
    """
    issues: List[str] = []
    prev_end: Optional[int] = None
    last = len(timeline.windows) - 1
    for i, w in enumerate(timeline.windows):
        where = f"window {i}"
        if w.index != i:
            issues.append(f"{where}: index {w.index}, expected {i}")
        if w.end_ps <= w.start_ps:
            issues.append(
                f"{where}: non-positive duration [{w.start_ps}, {w.end_ps})"
            )
        if prev_end is not None and w.start_ps != prev_end:
            issues.append(
                f"{where}: starts at {w.start_ps}, previous ended {prev_end}"
            )
        if i < last and timeline.window_ps and w.duration_ps > timeline.window_ps:
            issues.append(
                f"{where}: duration {w.duration_ps} exceeds the"
                f" {timeline.window_ps} ps window"
            )
        for name in WINDOW_FIELDS:
            value = getattr(w, name)
            if isinstance(value, (int, float)) and value < 0:
                issues.append(f"{where}: negative {name} ({value})")
        prev_end = w.end_ps
    return issues


def timeline_csv_lines(timeline: TimelineResult) -> List[str]:
    """CSV text lines (header + one row per window)."""
    columns = WINDOW_FIELDS + DERIVED_FIELDS
    lines = [",".join(columns)]
    for w in timeline.windows:
        cells = []
        for name in columns:
            value = getattr(w, name)
            cells.append(f"{value:.6g}" if isinstance(value, float) else str(value))
        lines.append(",".join(cells))
    return lines


def write_timeline_csv(timeline: TimelineResult, path: Union[str, Path]) -> None:
    """Write the CSV flattening of the timeline."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(timeline_csv_lines(timeline)) + "\n")
