"""Phase-change detection over a timeline (windowed mean shift).

Programs alternate between compute- and memory-bound phases; the paper's
prefetch gains and power-down residency both track those phases.  The
detector slides two adjacent half-windows over a per-window metric
series (bandwidth, power, ...) and flags the boundaries where the means
shift by more than a relative threshold — picking only the locally
strongest shift so one real transition yields one change point, not a
run of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.timeline.records import TimelineResult


@dataclass(frozen=True)
class PhaseChange:
    """One detected mean shift in a per-window metric."""

    metric: str
    window_index: int  # first window of the new phase
    time_ps: int  # start of that window
    before: float  # mean over the half-window preceding the shift
    after: float  # mean over the half-window following it

    @property
    def relative_shift(self) -> float:
        """|after - before| relative to the larger of the two means."""
        scale = max(abs(self.before), abs(self.after))
        return abs(self.after - self.before) / scale if scale else 0.0


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _shift_scores(series: Sequence[float], half: int) -> List[Tuple[float, float, float]]:
    """(score, before, after) at each candidate index; 0 where undefined."""
    scores: List[Tuple[float, float, float]] = []
    for i in range(len(series)):
        if i < half or i + half > len(series):
            scores.append((0.0, 0.0, 0.0))
            continue
        before = _mean(series[i - half:i])
        after = _mean(series[i:i + half])
        scale = max(abs(before), abs(after))
        score = abs(after - before) / scale if scale else 0.0
        scores.append((score, before, after))
    return scores


def detect_phases(
    timeline: TimelineResult,
    metrics: Sequence[str] = ("bandwidth_gbs", "avg_power_w"),
    half_window: int = 4,
    threshold: float = 0.5,
) -> List[PhaseChange]:
    """Find mean-shift change points in the given per-window metrics.

    Args:
        timeline: The recorded timeline.
        metrics: WindowRecord attribute names to scan.
        half_window: Windows averaged on each side of a candidate
            boundary; shifts shorter than this are smoothed away.
        threshold: Minimum relative mean shift (0.5 = 50%).

    Returns:
        Change points sorted by time then metric name — deterministic
        for a given timeline.
    """
    if half_window < 1:
        raise ValueError(f"half_window must be >= 1, got {half_window}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    changes: List[PhaseChange] = []
    for metric in metrics:
        series = timeline.series(metric)
        scores = _shift_scores(series, half_window)
        for i, (score, before, after) in enumerate(scores):
            if score < threshold:
                continue
            # Keep only local maxima of the shift score: a genuine step
            # produces high scores at every index near the edge, and the
            # largest one marks the boundary itself.
            left = scores[i - 1][0] if i > 0 else 0.0
            right = scores[i + 1][0] if i + 1 < len(scores) else 0.0
            if score < left or score <= right:
                continue
            changes.append(PhaseChange(
                metric=metric,
                window_index=i,
                time_ps=timeline.windows[i].start_ps,
                before=before,
                after=after,
            ))
    changes.sort(key=lambda c: (c.time_ps, c.metric))
    return changes
