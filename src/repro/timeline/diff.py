"""Window-by-window comparison of two timelines.

``repro timeline diff`` aligns two recorded runs on their shared window
grid and reports where they diverge — built for the paper's two
canonical A/B questions: what does AMB prefetching do to bandwidth,
latency and power over time (prefetch-on vs off), and what does a
faulted link's retry storm cost versus a clean run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.timeline.records import TimelineResult
from repro.timeline.report import sparkline

#: Per-window metrics compared by the diff (name, unit, decimals).
DIFF_METRICS = (
    ("bandwidth_gbs", "GB/s", 3),
    ("avg_latency_ns", "ns", 1),
    ("avg_power_w", "W", 3),
    ("powerdown_fraction", "", 3),
    ("queue_depth", "", 0),
)


@dataclass(frozen=True)
class MetricDiff:
    """Summary of one metric across the aligned windows."""

    metric: str
    mean_a: float
    mean_b: float
    max_abs_delta: float
    max_delta_index: int  # window where the divergence peaks

    @property
    def mean_delta(self) -> float:
        return self.mean_b - self.mean_a

    @property
    def relative(self) -> float:
        """Mean delta relative to run A's mean (0 when A is flat zero)."""
        return self.mean_delta / self.mean_a if self.mean_a else 0.0


@dataclass(frozen=True)
class TimelineDiff:
    """Alignment outcome plus per-metric summaries."""

    window_ps: int
    aligned_windows: int
    extra_a: int  # windows only run A has (it ran longer)
    extra_b: int
    metrics: List[MetricDiff] = field(default_factory=list)


def diff_timelines(a: TimelineResult, b: TimelineResult) -> TimelineDiff:
    """Align two timelines window-by-window and summarise the deltas.

    Both runs must use the same window size — comparing mismatched grids
    silently averages different spans and lies.  Runs of different
    length are aligned on the common prefix; the extras are reported,
    not dropped silently.
    """
    if a.window_ps != b.window_ps:
        raise ValueError(
            f"window size mismatch: {a.window_ps} ps vs {b.window_ps} ps;"
            " re-record with a matching --window-ns"
        )
    n = min(len(a.windows), len(b.windows))
    summaries: List[MetricDiff] = []
    for metric, _unit, _dec in DIFF_METRICS:
        series_a = a.series(metric)[:n]
        series_b = b.series(metric)[:n]
        if not n:
            summaries.append(MetricDiff(metric, 0.0, 0.0, 0.0, 0))
            continue
        deltas = [vb - va for va, vb in zip(series_a, series_b)]
        peak = max(range(n), key=lambda i: abs(deltas[i]))
        summaries.append(MetricDiff(
            metric=metric,
            mean_a=sum(series_a) / n,
            mean_b=sum(series_b) / n,
            max_abs_delta=abs(deltas[peak]),
            max_delta_index=peak,
        ))
    return TimelineDiff(
        window_ps=a.window_ps,
        aligned_windows=n,
        extra_a=len(a.windows) - n,
        extra_b=len(b.windows) - n,
        metrics=summaries,
    )


def format_diff(
    diff: TimelineDiff,
    a: TimelineResult,
    b: TimelineResult,
    label_a: str = "A",
    label_b: str = "B",
    width: int = 60,
) -> str:
    """Render a diff: aligned span, per-metric table, paired sparklines."""
    lines = [
        f"timeline diff: {label_a} vs {label_b}"
        f" ({diff.aligned_windows} aligned windows x"
        f" {diff.window_ps / 1000.0:.1f} ns)"
    ]
    if diff.extra_a:
        lines.append(f"  note: {label_a} has {diff.extra_a} extra windows"
                     " past the aligned span")
    if diff.extra_b:
        lines.append(f"  note: {label_b} has {diff.extra_b} extra windows"
                     " past the aligned span")
    for summary, (metric, unit, dec) in zip(diff.metrics, DIFF_METRICS):
        suffix = f" {unit}" if unit else ""
        lines.append(
            f"  {metric:<18} {label_a} {summary.mean_a:.{dec}f}{suffix}"
            f" -> {label_b} {summary.mean_b:.{dec}f}{suffix}"
            f"  ({summary.relative:+.1%}, peak |d|={summary.max_abs_delta:.{dec}f}"
            f" at window {summary.max_delta_index})"
        )
        n = diff.aligned_windows
        lines.append(f"    {label_a:>2} |{sparkline(a.series(metric)[:n], width)}|")
        lines.append(f"    {label_b:>2} |{sparkline(b.series(metric)[:n], width)}|")
    return "\n".join(lines)
