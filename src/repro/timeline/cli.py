"""``repro timeline`` — record, report, export, diff windowed runs.

Subcommands::

    repro timeline record --workload 4C-1 --system fbd-ap --out tl.jsonl
    repro timeline report tl.jsonl
    repro timeline export tl.jsonl --csv tl.csv [--chrome tl-trace.json]
    repro timeline diff base.jsonl ap.jsonl --labels base,ap

Also reachable as ``python -m repro.timeline``.  Exit codes follow the
repo convention: 0 ok, 1 failed validation / mismatched diff grids,
2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Optional

from repro.timeline.diff import diff_timelines, format_diff
from repro.timeline.export import (
    read_timeline_jsonl,
    validate_timeline,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.timeline.report import timeline_report


def _guarded(
    func: Callable[[argparse.Namespace], int],
) -> Callable[[argparse.Namespace], int]:
    """I/O and schema errors exit 2 (same contract as repro.bench)."""

    def wrapper(args: argparse.Namespace) -> int:
        try:
            return func(args)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapper


def cmd_record(args: argparse.Namespace) -> int:
    from repro.__main__ import _build_config
    from repro.system import run_system
    from repro.workloads.multiprog import workload_programs

    config = _build_config(args, args.system).with_timeline(
        window_ns=args.window_ns
    )
    result = run_system(config, workload_programs(args.workload))
    timeline = result.timeline
    assert timeline is not None  # with_timeline() always enables
    issues = validate_timeline(timeline)
    meta = {
        "system": args.system,
        "workload": args.workload,
        "insts": args.insts,
        "seed": args.seed,
        "elapsed_ps": result.elapsed_ps,
    }
    write_timeline_jsonl(timeline, args.out, meta=meta)
    print(f"[{len(timeline.windows)} windows -> {args.out}]")
    if args.csv:
        write_timeline_csv(timeline, args.csv)
        print(f"[csv -> {args.csv}]")
    print(timeline_report(
        timeline, label=f"{args.system} / {args.workload}"
    ))
    if issues:
        print("validation FAILED:", file=sys.stderr)
        for issue in issues:
            print(f"  {issue}", file=sys.stderr)
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    timeline, header = read_timeline_jsonl(args.path)
    meta = header.get("meta") or {}
    label = None
    if isinstance(meta, dict) and meta.get("system"):
        label = f"{meta.get('system')} / {meta.get('workload', '?')}"
    print(timeline_report(timeline, width=args.width, label=label))
    issues = validate_timeline(timeline)
    if issues:
        print("validation FAILED:", file=sys.stderr)
        for issue in issues:
            print(f"  {issue}", file=sys.stderr)
        return 1
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    if not args.csv and not args.chrome:
        print("error: pass --csv and/or --chrome", file=sys.stderr)
        return 2
    timeline, header = read_timeline_jsonl(args.path)
    if args.csv:
        write_timeline_csv(timeline, args.csv)
        print(f"[csv: {len(timeline.windows)} rows -> {args.csv}]")
    if args.chrome:
        from pathlib import Path

        from repro.serialize import encode_value
        from repro.telemetry.export import TelemetryCapture, chrome_trace

        meta = header.get("meta") or {}
        capture = TelemetryCapture(
            meta=dict(meta) if isinstance(meta, dict) else {},
            timeline=[encode_value(w) for w in timeline.windows],
        )
        doc = chrome_trace(capture)
        Path(args.chrome).write_text(json.dumps(doc) + "\n", encoding="utf-8")
        print(f"[chrome trace: {len(doc['traceEvents'])} events"
              f" -> {args.chrome}]")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    label_a, label_b = "A", "B"
    if args.labels:
        parts = args.labels.split(",")
        if len(parts) != 2:
            print("error: --labels wants exactly two comma-separated names",
                  file=sys.stderr)
            return 2
        label_a, label_b = parts
    timeline_a, _ = read_timeline_jsonl(args.a)
    timeline_b, _ = read_timeline_jsonl(args.b)
    try:
        diff = diff_timelines(timeline_a, timeline_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_diff(diff, timeline_a, timeline_b, label_a, label_b,
                      width=args.width))
    return 0


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the timeline subcommands (shared with python -m repro)."""
    sub = parser.add_subparsers(dest="timeline_command", required=True)

    record_p = sub.add_parser(
        "record", help="run one system with the timeline on and save JSONL"
    )
    record_p.add_argument("--workload", default="4C-1")
    record_p.add_argument("--system", choices=("ddr2", "fbd", "fbd-ap"),
                          default="fbd-ap")
    record_p.add_argument("--insts", type=int, default=50_000)
    record_p.add_argument("--seed", type=int, default=12345)
    record_p.add_argument("--no-sw-prefetch", action="store_true")
    record_p.add_argument("--k", type=int, default=4)
    record_p.add_argument("--entries", type=int, default=64)
    record_p.add_argument("--assoc",
                          choices=("direct", "2way", "4way", "full"),
                          default="full")
    record_p.add_argument("--window-ns", type=float, default=1000.0,
                          help="timeline window length in sim-time ns")
    record_p.add_argument("--out", default="timeline.jsonl",
                          help="JSONL output path")
    record_p.add_argument("--csv", default=None, help="also write a CSV")
    record_p.set_defaults(func=_guarded(cmd_record))

    report_p = sub.add_parser("report", help="render a recorded timeline")
    report_p.add_argument("path")
    report_p.add_argument("--width", type=int, default=60,
                          help="sparkline width in characters")
    report_p.set_defaults(func=_guarded(cmd_report))

    export_p = sub.add_parser(
        "export", help="convert a recorded timeline to CSV / Chrome trace"
    )
    export_p.add_argument("path")
    export_p.add_argument("--csv", default=None)
    export_p.add_argument("--chrome", default=None,
                          help="Chrome trace-event JSON with counter tracks")
    export_p.set_defaults(func=_guarded(cmd_export))

    diff_p = sub.add_parser(
        "diff", help="align two recorded timelines window-by-window"
    )
    diff_p.add_argument("a")
    diff_p.add_argument("b")
    diff_p.add_argument("--labels", default=None,
                        help="two comma-separated run names, e.g. base,ap")
    diff_p.add_argument("--width", type=int, default=60)
    diff_p.set_defaults(func=_guarded(cmd_diff))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.timeline",
        description="windowed sim-time telemetry (see docs/TIMELINE.md)",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.func(args)
