"""Sim-time telemetry timeline (windowed counters, energy, phases).

Off by default; enable with ``SystemConfig.with_timeline()``.  When on,
a :class:`~repro.timeline.collector.TimelineCollector` snapshots the
memory-system counters every window and derives per-window bandwidth,
latency percentiles, queue occupancy, prefetch behaviour, fault retries
and a per-command energy breakdown (repro.power.EnergyAccountant).
"""

from repro.timeline.collector import TimelineCollector
from repro.timeline.diff import TimelineDiff, diff_timelines, format_diff
from repro.timeline.export import (
    read_timeline_jsonl,
    timeline_csv_lines,
    validate_timeline,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.timeline.phases import PhaseChange, detect_phases
from repro.timeline.records import TimelineResult, WindowRecord
from repro.timeline.report import timeline_report

__all__ = [
    "PhaseChange",
    "TimelineCollector",
    "TimelineDiff",
    "TimelineResult",
    "WindowRecord",
    "detect_phases",
    "diff_timelines",
    "format_diff",
    "read_timeline_jsonl",
    "timeline_csv_lines",
    "timeline_report",
    "validate_timeline",
    "write_timeline_csv",
    "write_timeline_jsonl",
]
