"""Human-readable rendering of a recorded timeline.

``repro timeline report`` (and the timeline section of
:func:`repro.analysis.report.run_report`) render the per-window series
as ASCII sparklines over a totals summary, so a run's bandwidth burst,
latency tail, and power-down residency are visible at a glance without
leaving the terminal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.timeline.phases import detect_phases
from repro.timeline.records import TimelineResult, WindowRecord

#: Sparkline glyph ramp (same ramp as the bench dashboard).
_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a fixed-width sparkline (mean-downsampled)."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket-mean downsampling keeps bursts visible without aliasing
        # to whichever sample happens to land on a column.
        bucketed: List[float] = []
        per = len(values) / width
        for col in range(width):
            lo = int(col * per)
            hi = max(int((col + 1) * per), lo + 1)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        return " " * len(values)
    glyphs = []
    for value in values:
        rank = round(value / top * (len(_BARS) - 1))
        glyphs.append(_BARS[max(0, min(rank, len(_BARS) - 1))])
    return "".join(glyphs)


def _totals(windows: Sequence[WindowRecord]) -> dict:
    """Field-wise sums (and maxima where summing is meaningless)."""
    t = {
        "demand_reads": 0, "sw_prefetch_reads": 0, "writes": 0,
        "amb_hits": 0, "bytes_read": 0, "bytes_written": 0,
        "demand_latency_sum_ps": 0, "queue_delay_sum_ps": 0,
        "fault_retries": 0, "activates": 0, "column_reads": 0,
        "column_writes": 0, "refreshes": 0, "row_hits": 0,
        "row_misses": 0, "prefetched_lines": 0, "idle_ps": 0,
        "powerdown_ps": 0, "energy_act_nj": 0.0, "energy_rd_nj": 0.0,
        "energy_wr_nj": 0.0, "energy_refresh_nj": 0.0,
        "energy_background_nj": 0.0, "latency_max_ps": 0,
        "queue_depth_max": 0, "duration_ps": 0,
        "pf_issued": 0, "pf_used": 0, "pf_evicted_unused": 0,
        "pf_late_unused": 0, "pf_invalidated": 0,
    }
    for w in windows:
        t["demand_reads"] += w.demand_reads
        t["sw_prefetch_reads"] += w.sw_prefetch_reads
        t["writes"] += w.writes
        t["amb_hits"] += w.amb_hits
        t["bytes_read"] += w.bytes_read
        t["bytes_written"] += w.bytes_written
        t["demand_latency_sum_ps"] += w.demand_latency_sum_ps
        t["queue_delay_sum_ps"] += w.queue_delay_sum_ps
        t["fault_retries"] += w.fault_retries
        t["activates"] += w.activates
        t["column_reads"] += w.column_reads
        t["column_writes"] += w.column_writes
        t["refreshes"] += w.refreshes
        t["row_hits"] += w.row_hits
        t["row_misses"] += w.row_misses
        t["prefetched_lines"] += w.prefetched_lines
        t["idle_ps"] += w.idle_ps
        t["powerdown_ps"] += w.powerdown_ps
        t["energy_act_nj"] += w.energy_act_nj
        t["energy_rd_nj"] += w.energy_rd_nj
        t["energy_wr_nj"] += w.energy_wr_nj
        t["energy_refresh_nj"] += w.energy_refresh_nj
        t["energy_background_nj"] += w.energy_background_nj
        t["pf_issued"] += w.pf_issued
        t["pf_used"] += w.pf_used
        t["pf_evicted_unused"] += w.pf_evicted_unused
        t["pf_late_unused"] += w.pf_late_unused
        t["pf_invalidated"] += w.pf_invalidated
        t["latency_max_ps"] = max(t["latency_max_ps"], w.latency_max_ps)
        t["queue_depth_max"] = max(t["queue_depth_max"], w.queue_depth)
        t["duration_ps"] += w.duration_ps
    return t


def timeline_report(
    timeline: TimelineResult,
    width: int = 60,
    label: Optional[str] = None,
) -> str:
    """Render one timeline: header, sparklines, totals, phase changes."""
    lines: List[str] = []
    title = f"timeline: {label}" if label else "timeline"
    lines.append(title)
    n = len(timeline.windows)
    span_ns = (timeline.end_ps - timeline.start_ps) / 1000.0
    flags = []
    if timeline.resets:
        flags.append(f"resets={timeline.resets}")
    if timeline.truncated:
        flags.append("TRUNCATED at max_windows")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    lines.append(
        f"  {n} windows x {timeline.window_ps / 1000.0:.1f} ns"
        f" covering {span_ns:.1f} ns{suffix}"
    )
    if not n:
        return "\n".join(lines)

    for name, fmt_label in (
        ("bandwidth_gbs", "bandwidth GB/s"),
        ("avg_latency_ns", "read latency ns"),
        ("queue_depth", "queue depth"),
        ("avg_power_w", "power W"),
        ("powerdown_fraction", "power-down frac"),
    ):
        series = timeline.series(name)
        peak = max(series)
        lines.append(
            f"  {fmt_label:<16} |{sparkline(series, width)}| peak {peak:.3g}"
        )

    t = _totals(timeline.windows)
    reads = t["demand_reads"] + t["sw_prefetch_reads"]
    lines.append(
        f"  reads {t['demand_reads']} demand + {t['sw_prefetch_reads']} swpf,"
        f" writes {t['writes']}, AMB hits {t['amb_hits']}"
        f" ({t['amb_hits'] / reads:.1%} of reads)" if reads else
        f"  reads 0, writes {t['writes']}"
    )
    lines.append(
        f"  traffic {(t['bytes_read'] + t['bytes_written']) / 1e6:.2f} MB"
        f" ({t['bytes_read']} B read, {t['bytes_written']} B written)"
    )
    row_total = t["row_hits"] + t["row_misses"]
    hit_rate = t["row_hits"] / row_total if row_total else 0.0
    lines.append(
        f"  DRAM: {t['activates']} ACT, {t['column_reads']} RD,"
        f" {t['column_writes']} WR, {t['refreshes']} REF,"
        f" row-hit {hit_rate:.1%}, {t['prefetched_lines']} prefetched lines"
    )
    if t["demand_reads"]:
        avg_ns = t["demand_latency_sum_ps"] / t["demand_reads"] / 1000.0
        qd_ns = t["queue_delay_sum_ps"] / t["demand_reads"] / 1000.0
        lines.append(
            f"  latency: avg {avg_ns:.1f} ns (queue {qd_ns:.1f}),"
            f" worst-window max {t['latency_max_ps'] / 1000.0:.1f} ns"
        )
    dynamic_nj = (t["energy_act_nj"] + t["energy_rd_nj"]
                  + t["energy_wr_nj"] + t["energy_refresh_nj"])
    total_nj = dynamic_nj + t["energy_background_nj"]
    avg_w = total_nj / (t["duration_ps"] / 1000.0) if t["duration_ps"] else 0.0
    lines.append(
        f"  energy: {total_nj / 1000.0:.2f} uJ"
        f" (ACT {t['energy_act_nj']:.0f} + RD {t['energy_rd_nj']:.0f}"
        f" + WR {t['energy_wr_nj']:.0f} + REF {t['energy_refresh_nj']:.0f}"
        f" + background {t['energy_background_nj']:.0f} nJ),"
        f" avg power {avg_w:.3f} W"
    )
    span_ps = t["duration_ps"]
    if span_ps:
        lines.append(
            f"  residency: idle {t['idle_ps'] / span_ps:.1%},"
            f" power-down {t['powerdown_ps'] / span_ps:.1%}"
            f" of the recorded span, peak queue {t['queue_depth_max']}"
        )
    if t["fault_retries"]:
        lines.append(f"  faults: {t['fault_retries']} recovered retries")
    if t["pf_issued"]:
        lines.append(
            f"  prefetch lifecycle: {t['pf_issued']} issued ="
            f" {t['pf_used']} used + {t['pf_late_unused']} late"
            f" + {t['pf_evicted_unused']} evicted"
            f" + {t['pf_invalidated']} invalidated (+ open)"
        )

    changes = detect_phases(timeline)
    if changes:
        lines.append("  phase changes:")
        for change in changes:
            lines.append(
                f"    {change.time_ps / 1000.0:>10.1f} ns  {change.metric}:"
                f" {change.before:.3g} -> {change.after:.3g}"
                f" ({change.relative_shift:+.0%})"
            )
    # latency percentile trend (p50/p95/p99 of the busiest window)
    busiest = max(
        timeline.windows, key=lambda w: w.demand_reads + w.sw_prefetch_reads
    )
    if busiest.latency_p50_ps:
        lines.append(
            f"  busiest window #{busiest.index}"
            f" [{busiest.start_ps / 1000.0:.0f}-{busiest.end_ps / 1000.0:.0f} ns]:"
            f" p50 {busiest.latency_p50_ps / 1000.0:.1f},"
            f" p95 {busiest.latency_p95_ps / 1000.0:.1f},"
            f" p99 {busiest.latency_p99_ps / 1000.0:.1f} ns"
        )
    return "\n".join(lines)
