"""Typed per-window records produced by the timeline collector.

A :class:`WindowRecord` holds the *deltas* of every tracked counter over
one sim-time window plus a few end-of-window gauges (queue depth) and
the window's energy breakdown in nanojoules.  Integer counters are exact;
derived rates (bandwidth, hit rates, power) are properties so they never
drift from the raw counts they are computed from.

Windowing semantics (see docs/TIMELINE.md): a window covers the
half-open interval ``[start_ps, end_ps)`` of sim time.  A request whose
completion event shares a timestamp with the window-boundary tick lands
in the *next* window, because the tick was scheduled earlier and fires
first on a timestamp tie.  The final window is emitted at finalize only
if the run advanced past the last boundary — a zero-length final window
is never recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class WindowRecord:
    """Counter deltas and energy for one sim-time window."""

    index: int = 0
    start_ps: int = 0
    end_ps: int = 0
    # -- completion-side deltas (what finished inside the window) -------
    demand_reads: int = 0
    sw_prefetch_reads: int = 0
    writes: int = 0
    amb_hits: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    demand_latency_sum_ps: int = 0
    queue_delay_sum_ps: int = 0
    fault_retries: int = 0
    # -- latency distribution of demand reads completed in the window ---
    latency_p50_ps: int = 0
    latency_p95_ps: int = 0
    latency_p99_ps: int = 0
    latency_max_ps: int = 0
    # -- device-side deltas (DRAM commands issued inside the window) ----
    activates: int = 0
    column_reads: int = 0
    column_writes: int = 0
    refreshes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    prefetched_lines: int = 0
    # -- residency deltas and end-of-window gauges ----------------------
    idle_ps: int = 0
    powerdown_ps: int = 0
    queue_depth: int = 0  # requests in the controller at window end
    # -- energy breakdown (nanojoules, repro.power.EnergyAccountant) ----
    energy_act_nj: float = 0.0
    energy_rd_nj: float = 0.0
    energy_wr_nj: float = 0.0
    energy_refresh_nj: float = 0.0
    energy_background_nj: float = 0.0
    # -- prefetch lifecycle taxonomy deltas (repro.prefetch; fed only
    # when AmbPrefetchConfig.lifecycle is on) ---------------------------
    pf_issued: int = 0
    pf_used: int = 0
    pf_evicted_unused: int = 0
    pf_late_unused: int = 0
    pf_invalidated: int = 0

    #: Late-added fields elided from the canonical encoding while at
    #: their defaults so pre-existing timeline digests, goldens and JSONL
    #: files keep decoding (and hashing) unchanged.
    ENCODE_OPTIONAL_FIELDS = frozenset({
        "pf_issued", "pf_used", "pf_evicted_unused", "pf_late_unused",
        "pf_invalidated",
    })

    # -- derived rates (never serialised; recomputed from the counts) ---
    # Structural validity (end > start, contiguous indices) is checked by
    # repro.timeline.export.validate_timeline, not in the constructor, so
    # partially-populated records can round-trip through the serializer.

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps

    @property
    def total_reads(self) -> int:
        return self.demand_reads + self.sw_prefetch_reads

    @property
    def bandwidth_gbs(self) -> float:
        """Data crossing the channels, GB/s (bytes/ns == GB/s)."""
        if self.duration_ps <= 0:
            return 0.0
        return (self.bytes_read + self.bytes_written) / self.duration_ps * 1000.0

    @property
    def avg_latency_ns(self) -> float:
        """Mean demand-read latency of completions in this window."""
        if self.demand_reads == 0:
            return 0.0
        return self.demand_latency_sum_ps / self.demand_reads / 1000.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def amb_hit_rate(self) -> float:
        """Share of reads served from an AMB prefetch cache."""
        reads = self.total_reads
        return self.amb_hits / reads if reads else 0.0

    @property
    def energy_dynamic_nj(self) -> float:
        return (
            self.energy_act_nj + self.energy_rd_nj
            + self.energy_wr_nj + self.energy_refresh_nj
        )

    @property
    def energy_total_nj(self) -> float:
        return self.energy_dynamic_nj + self.energy_background_nj

    @property
    def avg_power_w(self) -> float:
        """Average power over the window (nJ / ns == W)."""
        if self.duration_ps <= 0:
            return 0.0
        return self.energy_total_nj / (self.duration_ps / 1000.0)

    @property
    def powerdown_fraction(self) -> float:
        """Share of the window the whole subsystem sat in power-down.

        An idle gap is credited to the window in which it *closes*, so a
        single long gap can push one window's fraction above 1.0 while
        the windows it actually spanned show 0 — the sum is conserved.
        """
        if self.duration_ps <= 0:
            return 0.0
        return self.powerdown_ps / self.duration_ps


@dataclass(frozen=True)
class TimelineResult:
    """An ordered sequence of windows from one run."""

    window_ps: int = 0
    windows: List[WindowRecord] = field(default_factory=list)
    #: Measurement resets seen (warm-up discard); windows recorded before
    #: the last reset are dropped, so this explains a late first window.
    resets: int = 0
    #: True when recording stopped at TimelineConfig.max_windows.
    truncated: bool = False

    def series(self, name: str) -> List[float]:
        """One attribute of every window, as a list (for sparklines)."""
        return [float(getattr(w, name)) for w in self.windows]

    @property
    def start_ps(self) -> int:
        return self.windows[0].start_ps if self.windows else 0

    @property
    def end_ps(self) -> int:
        return self.windows[-1].end_ps if self.windows else 0
