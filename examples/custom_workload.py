#!/usr/bin/env python3
"""Drive the simulator with your own workload.

Three ways in, demonstrated below:

1. a synthetic generator (`repro.workloads.synthetic`) — here a stream and
   a uniform-random core side by side, showing how differently AMB
   prefetching treats them;
2. a custom :class:`ProgramProfile` — invent a program the SPEC table
   doesn't have;
3. a recorded trace file — save, inspect, replay (JSONL).

Run:  python examples/custom_workload.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro import fbdimm_amb_prefetch, fbdimm_baseline
from repro.analysis.report import run_report
from repro.system import System
from repro.workloads.spec import ProgramProfile, SyntheticTrace
from repro.workloads.synthetic import SyntheticSpec, stream, uniform_random
from repro.workloads.trace import record
from repro.workloads.trace_io import load_trace, save_trace

INSTRUCTIONS = 20_000


def part_one_synthetic() -> None:
    print("1) stream vs random core under AMB prefetching")
    config = dataclasses.replace(
        fbdimm_amb_prefetch(num_cores=2),
        instructions_per_core=INSTRUCTIONS,
        software_prefetch=False,
    )
    traces = [
        stream(SyntheticSpec(gap_insts=40, seed=1)),
        uniform_random(SyntheticSpec(gap_insts=40, seed=2), base_line=1 << 30),
    ]
    result = System.from_traces(
        config, traces, base_ipcs=[2.0, 2.0], labels=["stream", "random"]
    ).run()
    print(f"   coverage {result.prefetch_coverage:.1%} "
          f"(a pure stream would approach 75%, pure random ~0%)")
    print(f"   per-core IPC: {dict(zip(result.programs, [round(i, 3) for i in result.core_ipcs]))}\n")


def part_two_custom_profile() -> None:
    print("2) custom program profile")
    synthetic_db = ProgramProfile(
        name="mydb",
        base_ipc=1.1,
        mpki=18.0,
        write_fraction=0.35,
        streams=8,  # many concurrent scans
        run_length=6,  # short bursts
        sw_prefetch_coverage=0.2,
    )
    trace = SyntheticTrace(synthetic_db, seed=42)
    config = dataclasses.replace(
        fbdimm_amb_prefetch(num_cores=1), instructions_per_core=INSTRUCTIONS
    )
    result = System.from_traces(
        config, [trace], base_ipcs=[synthetic_db.base_ipc], labels=["mydb"]
    ).run()
    print("   " + run_report(result).splitlines()[-1] + "\n")


def part_three_record_replay() -> None:
    print("3) record to JSONL and replay")
    trace = SyntheticTrace(
        ProgramProfile("tiny", 1.0, 20.0, 0.3, 2, 8, 0.0), seed=7
    )
    events = record(trace, 1_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tiny.jsonl"
        count = save_trace(path, events, metadata={"program": "tiny"})
        config = dataclasses.replace(
            fbdimm_baseline(1), instructions_per_core=INSTRUCTIONS
        )
        result = System.from_traces(
            config, [load_trace(path)], base_ipcs=[1.0], labels=["tiny"]
        ).run()
        print(f"   saved {count} events, replay ran {result.elapsed_ps / 1e6:.2f} us, "
              f"{result.mem.demand_reads} demand reads")


def main() -> None:
    part_one_synthetic()
    part_two_custom_profile()
    part_three_record_replay()


if __name__ == "__main__":
    main()
