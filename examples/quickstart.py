#!/usr/bin/env python3
"""Quickstart: measure what AMB prefetching buys on one workload.

Builds three systems — the DDR2 baseline, plain FB-DIMM, and FB-DIMM with
AMB prefetching — runs the same two-program workload on each, and prints
the paper's headline metrics side by side.

Run:  python examples/quickstart.py
"""

import dataclasses

from repro import (
    ddr2_baseline,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
    run_system,
)

PROGRAMS = ["wupwise", "swim"]  # workload 2C-1 of the paper
INSTRUCTIONS = 60_000  # per core; raise for tighter numbers


def main() -> None:
    systems = {
        "DDR2": ddr2_baseline(num_cores=2),
        "FB-DIMM": fbdimm_baseline(num_cores=2),
        "FB-DIMM + AMB prefetch": fbdimm_amb_prefetch(num_cores=2),
    }

    results = {}
    for name, config in systems.items():
        config = dataclasses.replace(config, instructions_per_core=INSTRUCTIONS)
        results[name] = run_system(config, PROGRAMS)

    header = (
        f"{'system':<24} {'sum IPC':>8} {'read lat':>9} "
        f"{'bandwidth':>10} {'coverage':>9}"
    )
    print(f"workload: {PROGRAMS}, {INSTRUCTIONS} instructions/core\n")
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        print(
            f"{name:<24} {sum(result.core_ipcs):>8.3f} "
            f"{result.avg_read_latency_ns:>7.1f}ns "
            f"{result.utilized_bandwidth_gbs:>7.2f}GB/s "
            f"{result.prefetch_coverage:>9.3f}"
        )

    fbd = sum(results["FB-DIMM"].core_ipcs)
    ap = sum(results["FB-DIMM + AMB prefetch"].core_ipcs)
    print(f"\nAMB prefetching speedup over plain FB-DIMM: {ap / fbd - 1:+.1%}")
    print("(The paper reports +19.4% on average for 2-core workloads.)")


if __name__ == "__main__":
    main()
