#!/usr/bin/env python3
"""Tune the AMB prefetcher for a workload.

Sweeps the three design knobs of Section 5.3 — region size K, AMB-cache
entries, and tag-store associativity — on a four-core workload, and prints
performance, coverage, efficiency and relative DRAM power for each
configuration, ending with a recommendation in the spirit of the paper's
conclusion ("four-way associativity, 64 cache lines, four-cacheline
interleaving is a good choice").

Run:  python examples/prefetch_tuning.py [--workload 4C-1] [--insts N]
"""

import argparse
import dataclasses

from repro import (
    AmbPrefetchConfig,
    Associativity,
    fbdimm_amb_prefetch,
    fbdimm_baseline,
    run_system,
)
from repro.power.ddr2_power import relative_dynamic_power
from repro.workloads.multiprog import workload_programs

VARIANTS = [
    ("K=2", AmbPrefetchConfig(region_cachelines=2)),
    ("K=4", AmbPrefetchConfig(region_cachelines=4)),
    ("K=8", AmbPrefetchConfig(region_cachelines=8)),
    ("K=4, 32 entries", AmbPrefetchConfig(cache_entries=32)),
    ("K=4, 128 entries", AmbPrefetchConfig(cache_entries=128)),
    ("K=4, direct", AmbPrefetchConfig(associativity=Associativity.DIRECT)),
    ("K=4, 2-way", AmbPrefetchConfig(associativity=Associativity.TWO_WAY)),
    ("K=4, 4-way", AmbPrefetchConfig(associativity=Associativity.FOUR_WAY)),
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", default="4C-1")
    parser.add_argument("--insts", type=int, default=30_000)
    args = parser.parse_args()

    programs = workload_programs(args.workload)
    cores = len(programs)

    base_cfg = dataclasses.replace(
        fbdimm_baseline(cores), instructions_per_core=args.insts
    )
    baseline = run_system(base_cfg, programs)
    base_ipc = sum(baseline.core_ipcs)
    print(f"workload {args.workload}: plain FB-DIMM sum-IPC = {base_ipc:.3f}\n")

    header = (
        f"{'variant':<18} {'speedup':>8} {'coverage':>9} "
        f"{'efficiency':>11} {'rel power':>10}"
    )
    print(header)
    print("-" * len(header))
    scored = []
    for label, prefetch in VARIANTS:
        config = dataclasses.replace(
            fbdimm_amb_prefetch(cores, prefetch=prefetch),
            instructions_per_core=args.insts,
        )
        result = run_system(config, programs)
        speedup = sum(result.core_ipcs) / base_ipc
        power = relative_dynamic_power(result.mem, baseline.mem)
        scored.append((label, speedup, power))
        print(
            f"{label:<18} {speedup:>8.3f} {result.prefetch_coverage:>9.3f} "
            f"{result.prefetch_efficiency:>11.3f} {power:>10.3f}"
        )

    # Recommend the variant with the best speedup-per-power balance.
    best = max(scored, key=lambda item: item[1] / item[2])
    print(
        f"\nrecommendation: '{best[0]}' "
        f"(speedup {best[1]:.3f} at {best[2]:.2f}x relative DRAM power)"
    )


if __name__ == "__main__":
    main()
