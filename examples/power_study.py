#!/usr/bin/env python3
"""Performance vs DRAM power across region sizes (Section 5.5).

AMB-cache hits skip the activate/precharge pair — the 4x-cost DRAM
operation — but group fetches add speculative column accesses.  This
example traces that trade-off for K in {1, 2, 4, 8} (K=1 disables
prefetching) on a single-core and an eight-core workload, printing the
ACT/CAS balance the paper's Figure 13 is built from.

Run:  python examples/power_study.py [--insts N]
"""

import argparse
import dataclasses

from repro import AmbPrefetchConfig, fbdimm_amb_prefetch, fbdimm_baseline, run_system
from repro.power.ddr2_power import MicronPowerCalculator, PowerModel, relative_dynamic_power
from repro.workloads.multiprog import workload_programs


def run(config, programs, insts):
    return run_system(
        dataclasses.replace(config, instructions_per_core=insts), programs
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--insts", type=int, default=30_000)
    args = parser.parse_args()

    calc = MicronPowerCalculator()
    model = PowerModel(act_pre_weight=round(calc.act_to_column_ratio(), 1))
    print(
        f"Micron-style calculator: ACT/PRE pair = {calc.act_pre_energy_nj():.1f} nJ, "
        f"column burst = {calc.column_energy_nj():.1f} nJ "
        f"(ratio {calc.act_to_column_ratio():.1f}:1; the paper uses ~4:1)\n"
    )

    for workload in ("swim", "8C-1"):
        programs = workload_programs(workload)
        cores = len(programs)
        baseline = run(fbdimm_baseline(cores), programs, args.insts)
        base_ipc = sum(baseline.core_ipcs)
        print(f"workload {workload}:")
        print(f"  {'config':<8} {'speedup':>8} {'ACT':>7} {'CAS':>7} {'rel power':>10}")
        print(f"  {'FBD':<8} {1.0:>8.3f} {baseline.mem.activates:>7} "
              f"{baseline.mem.column_accesses:>7} {1.0:>10.3f}")
        for k in (2, 4, 8):
            prefetch = AmbPrefetchConfig(region_cachelines=k)
            result = run(fbdimm_amb_prefetch(cores, prefetch=prefetch), programs, args.insts)
            power = relative_dynamic_power(result.mem, baseline.mem, model)
            print(
                f"  {'K=' + str(k):<8} {sum(result.core_ipcs) / base_ipc:>8.3f} "
                f"{result.mem.activates:>7} {result.mem.column_accesses:>7} "
                f"{power:>10.3f}"
            )
        print()

    print("Expected shape: ACT falls and CAS rises with K; the power saving")
    print("peaks around K=4 and erodes at K=8 as wasted prefetches pile up.")


if __name__ == "__main__":
    main()
