#!/usr/bin/env python3
"""Multi-core scaling study: the paper's motivating scenario.

Multi-core processors multiply off-chip memory traffic (Section 1).  This
example sweeps 1, 2, 4 and 8 cores over the three memory systems and shows
where the FB-DIMM interconnect starts paying off and how much AMB
prefetching adds on top — the content of Figures 4 and 7 in one view.

Run:  python examples/multicore_scaling.py [--insts N]
"""

import argparse
import dataclasses

from repro import ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline, run_system
from repro.workloads.multiprog import workloads_by_cores, workload_programs


def sum_ipc(config, programs, instructions):
    config = dataclasses.replace(config, instructions_per_core=instructions)
    return sum(run_system(config, programs).core_ipcs)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--insts", type=int, default=30_000)
    args = parser.parse_args()

    print(f"{'cores':>5} {'workload':>9} {'DDR2':>7} {'FBD':>7} {'FBD-AP':>7} "
          f"{'FBD/DDR2':>9} {'AP gain':>8}")
    for cores in (1, 2, 4, 8):
        # One representative workload per core count keeps this example
        # quick; the benchmark harness sweeps them all.
        workload = workloads_by_cores(cores)[0]
        programs = workload_programs(workload)
        ddr2 = sum_ipc(ddr2_baseline(cores), programs, args.insts)
        fbd = sum_ipc(fbdimm_baseline(cores), programs, args.insts)
        ap = sum_ipc(fbdimm_amb_prefetch(cores), programs, args.insts)
        print(
            f"{cores:>5} {workload:>9} {ddr2:>7.3f} {fbd:>7.3f} {ap:>7.3f} "
            f"{fbd / ddr2:>9.3f} {ap / fbd - 1:>+7.1%}"
        )

    print(
        "\nExpected shape (paper Sections 5.1-5.2): FBD/DDR2 below 1.0 for"
        "\n1-2 cores, above 1.0 by 8 cores; AP gain positive throughout."
    )


if __name__ == "__main__":
    main()
