#!/usr/bin/env python3
"""The paper's footnote 1: "Future FB-DIMM will also support DDR3."

Sweeps the FB-DIMM channel generation — DDR2-533/667/800 and DDR3-1066/1333
— over an 8-core workload, with and without AMB prefetching, and renders
the result as a terminal bar chart.  The question the sweep answers: does
AMB prefetching stay worthwhile as raw channel bandwidth grows?

Run:  python examples/ddr3_outlook.py [--insts N]
"""

import argparse
import dataclasses

from repro import fbdimm_amb_prefetch, fbdimm_baseline
from repro.config import DDR3_TIMINGS, DramTimings
from repro.experiments.charts import bar_chart
from repro.experiments.runner import ExperimentContext, ResultTable
from repro.workloads.multiprog import workload_programs

GENERATIONS = [
    ("DDR2-533", 533, DramTimings()),
    ("DDR2-667", 667, DramTimings()),
    ("DDR2-800", 800, DramTimings()),
    ("DDR3-1066", 1066, DDR3_TIMINGS),
    ("DDR3-1333", 1333, DDR3_TIMINGS),
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--insts", type=int, default=25_000)
    parser.add_argument("--workload", default="8C-1")
    args = parser.parse_args()

    ctx = ExperimentContext(instructions=args.insts)
    programs = workload_programs(args.workload)
    cores = len(programs)

    table = ResultTable(
        title=f"FB-DIMM generations on {args.workload}",
        columns=["generation", "fbd_ipc", "ap_ipc", "ap_gain"],
    )
    for label, rate, timings in GENERATIONS:
        base = fbdimm_baseline(cores, data_rate_mts=rate, timings=timings)
        ap = fbdimm_amb_prefetch(cores, data_rate_mts=rate, timings=timings)
        fbd_ipc = sum(ctx.run(base, programs).core_ipcs)
        ap_ipc = sum(ctx.run(ap, programs).core_ipcs)
        table.add(
            generation=label,
            fbd_ipc=fbd_ipc,
            ap_ipc=ap_ipc,
            ap_gain=ap_ipc / fbd_ipc - 1.0,
        )

    print(table.format())
    print()
    print(bar_chart(table, "ap_ipc", label_columns=["generation"], width=44))
    print()
    gains = table.column("ap_gain")
    print(
        f"AMB prefetching gain: {gains[0]:+.1%} at DDR2-533 -> "
        f"{gains[-1]:+.1%} at DDR3-1333"
    )
    trend = "grows" if gains[-1] > gains[0] else "shrinks"
    print(f"(The AP benefit {trend} with channel generation: once bandwidth")
    print(" stops being the bottleneck, the idle-latency and bank-conflict")
    print(" savings dominate — DRAM-level prefetching ages well.)")


if __name__ == "__main__":
    main()
