#!/usr/bin/env python3
"""Who pays for sharing the memory system — and does AMB prefetching help?

The SMT-speedup metric sums per-program slowdowns; this study breaks a
4-core mix down per core (reads, latency, progress vs running alone) and
compares the *fairness* of plain FB-DIMM against FB-DIMM with AMB
prefetching.  Intuition to check: by removing bank conflicts, AP should
lift the most-penalised program more than the least-penalised one.

Run:  python examples/interference_study.py [--workload 4C-5] [--insts N]
"""

import argparse
import dataclasses

from repro import ddr2_baseline, fbdimm_amb_prefetch, fbdimm_baseline, run_system
from repro.analysis.interference import fairness_ratio, per_core_breakdown
from repro.workloads.multiprog import workload_programs


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", default="4C-5")
    parser.add_argument("--insts", type=int, default=25_000)
    args = parser.parse_args()

    programs = workload_programs(args.workload)
    cores = len(programs)

    # Solo references: each program alone on the single-core DDR2 system.
    references = {}
    for program in programs:
        solo = run_system(
            dataclasses.replace(ddr2_baseline(1), instructions_per_core=args.insts),
            [program],
        )
        references[program] = solo.core_ipcs[0]

    for label, config in (
        ("FB-DIMM", fbdimm_baseline(cores)),
        ("FB-DIMM + AMB prefetch", fbdimm_amb_prefetch(cores)),
    ):
        config = dataclasses.replace(config, instructions_per_core=args.insts)
        result = run_system(config, programs)
        rows = per_core_breakdown(result, references)
        print(f"{label} on {args.workload}:")
        print(f"  {'program':<10} {'reads':>7} {'avg lat':>9} {'vs solo':>8}")
        for row in rows:
            print(
                f"  {row.program:<10} {row.demand_reads:>7} "
                f"{row.avg_latency_ns:>7.1f}ns {row.relative_progress:>7.1%}"
            )
        print(f"  fairness (min/max progress): {fairness_ratio(result, references):.3f}\n")

    print("Expected: AP raises every program's progress and usually the")
    print("fairness ratio too — the lagging, bank-conflict-bound programs")
    print("benefit most from conflicts disappearing.")


if __name__ == "__main__":
    main()
